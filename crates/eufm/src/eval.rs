//! Concrete evaluation of EUFM expressions.
//!
//! The evaluator interprets term variables over `u64` values, propositional
//! variables over Booleans, uninterpreted functions/predicates as lazily
//! memoised tables (which enforces functional consistency), and memory states
//! as write lists over an abstract initial memory.
//!
//! It is used to validate counterexamples produced by the SAT back ends and
//! as the reference semantics in differential property tests of the
//! propositional translation.

use crate::context::Context;
use crate::node::{Formula, FormulaId, Term, TermId};
use crate::symbols::Symbol;
use std::collections::HashMap;

/// A concrete value of a term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A word-level data value.
    Data(u64),
    /// A memory-array state: an abstract base (initial content generator) plus
    /// the list of writes applied so far, oldest first.
    Mem {
        /// Identifies the initial memory content.
        base: u64,
        /// `(address, data)` pairs in program order.
        writes: Vec<(u64, u64)>,
    },
}

impl Value {
    /// Collapses the value to a `u64` fingerprint (used when a memory state is
    /// passed as an argument to an uninterpreted function).
    pub fn fingerprint(&self) -> u64 {
        match self {
            Value::Data(v) => *v,
            Value::Mem { base, writes } => {
                let mut h = mix(0x6d656d, *base);
                for (a, d) in writes {
                    h = mix(h, mix(*a, *d));
                }
                h
            }
        }
    }

    /// Returns the data value, treating a memory state as its fingerprint.
    pub fn as_data(&self) -> u64 {
        self.fingerprint()
    }
}

fn mix(a: u64, b: u64) -> u64 {
    // SplitMix64-style deterministic mixing; good enough for default values.
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_add(0x1234_5678_9abc_def1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An interpretation of the free symbols of a formula.
///
/// Anything left unspecified receives a deterministic default derived from the
/// symbol and argument values, which keeps uninterpreted functions
/// functionally consistent and makes unconstrained term variables pairwise
/// distinct with overwhelming probability (a "maximally diverse" default).
#[derive(Clone, Debug, Default)]
pub struct Interpretation {
    /// Values of term variables.
    pub term_vars: HashMap<Symbol, u64>,
    /// Values of propositional variables.
    pub prop_vars: HashMap<Symbol, bool>,
    /// Explicit uninterpreted-function entries `(f, args) -> value`.
    pub uf_entries: HashMap<(Symbol, Vec<u64>), u64>,
    /// Explicit uninterpreted-predicate entries `(P, args) -> value`.
    pub up_entries: HashMap<(Symbol, Vec<u64>), bool>,
}

impl Interpretation {
    /// Creates an empty interpretation (all defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value of a term variable by name.
    pub fn set_term_var(&mut self, ctx: &mut Context, name: &str, value: u64) -> &mut Self {
        let sym = ctx.symbol(name);
        self.term_vars.insert(sym, value);
        self
    }

    /// Sets the value of a propositional variable by name.
    pub fn set_prop_var(&mut self, ctx: &mut Context, name: &str, value: bool) -> &mut Self {
        let sym = ctx.symbol(name);
        self.prop_vars.insert(sym, value);
        self
    }
}

/// Evaluates `root` under `interp` with a throwaway [`Evaluator`]: the
/// convenience entry point of counterexample validation, where a lifted SAT
/// model is replayed against the encoded correctness formula.
pub fn evaluate(ctx: &Context, interp: &Interpretation, root: FormulaId) -> bool {
    Evaluator::new(ctx, interp.clone()).eval_formula(root)
}

/// Evaluates expressions of one [`Context`] under an [`Interpretation`].
#[derive(Debug)]
pub struct Evaluator<'a> {
    ctx: &'a Context,
    interp: Interpretation,
    uf_memo: HashMap<(Symbol, Vec<u64>), u64>,
    up_memo: HashMap<(Symbol, Vec<u64>), bool>,
    term_cache: HashMap<TermId, Value>,
    formula_cache: HashMap<FormulaId, bool>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over `ctx` with the given interpretation.
    pub fn new(ctx: &'a Context, interp: Interpretation) -> Self {
        Evaluator {
            ctx,
            uf_memo: interp.uf_entries.clone(),
            up_memo: interp.up_entries.clone(),
            interp,
            term_cache: HashMap::new(),
            formula_cache: HashMap::new(),
        }
    }

    /// Evaluates a term.
    pub fn eval_term(&mut self, id: TermId) -> Value {
        if let Some(v) = self.term_cache.get(&id) {
            return v.clone();
        }
        let value = match self.ctx.term(id).clone() {
            Term::Var(sym) => {
                let v = self
                    .interp
                    .term_vars
                    .get(&sym)
                    .copied()
                    .unwrap_or_else(|| mix(0x7661_7200, sym.index() as u64));
                Value::Data(v)
            }
            Term::Uf(sym, args) => {
                let arg_vals: Vec<u64> =
                    args.iter().map(|a| self.eval_term(*a).as_data()).collect();
                let key = (sym, arg_vals);
                let v = if let Some(v) = self.uf_memo.get(&key) {
                    *v
                } else {
                    let mut h = mix(0x7566_0000, sym.index() as u64);
                    for a in &key.1 {
                        h = mix(h, *a);
                    }
                    self.uf_memo.insert(key, h);
                    h
                };
                Value::Data(v)
            }
            Term::Ite(c, a, b) => {
                if self.eval_formula(c) {
                    self.eval_term(a)
                } else {
                    self.eval_term(b)
                }
            }
            Term::Read(m, a) => {
                let mem = self.eval_term(m);
                let addr = self.eval_term(a).as_data();
                Value::Data(read_mem(&mem, addr))
            }
            Term::Write(m, a, d) => {
                let mem = self.eval_term(m);
                let addr = self.eval_term(a).as_data();
                let data = self.eval_term(d).as_data();
                let (base, mut writes) = match mem {
                    Value::Mem { base, writes } => (base, writes),
                    Value::Data(v) => (v, Vec::new()),
                };
                writes.push((addr, data));
                Value::Mem { base, writes }
            }
        };
        self.term_cache.insert(id, value.clone());
        value
    }

    /// Evaluates a formula.
    pub fn eval_formula(&mut self, id: FormulaId) -> bool {
        if let Some(v) = self.formula_cache.get(&id) {
            return *v;
        }
        let value = match self.ctx.formula(id).clone() {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(sym) => self
                .interp
                .prop_vars
                .get(&sym)
                .copied()
                .unwrap_or_else(|| mix(0x7076_0000, sym.index() as u64) & 1 == 1),
            Formula::Up(sym, args) => {
                let arg_vals: Vec<u64> =
                    args.iter().map(|a| self.eval_term(*a).as_data()).collect();
                let key = (sym, arg_vals);
                if let Some(v) = self.up_memo.get(&key) {
                    *v
                } else {
                    let mut h = mix(0x7570_0000, sym.index() as u64);
                    for a in &key.1 {
                        h = mix(h, *a);
                    }
                    let v = h & 1 == 1;
                    self.up_memo.insert(key, v);
                    v
                }
            }
            Formula::Not(a) => !self.eval_formula(a),
            Formula::And(a, b) => self.eval_formula(a) && self.eval_formula(b),
            Formula::Or(a, b) => self.eval_formula(a) || self.eval_formula(b),
            Formula::Ite(c, a, b) => {
                if self.eval_formula(c) {
                    self.eval_formula(a)
                } else {
                    self.eval_formula(b)
                }
            }
            Formula::Eq(a, b) => {
                let va = self.eval_term(a);
                let vb = self.eval_term(b);
                match (&va, &vb) {
                    (Value::Data(x), Value::Data(y)) => x == y,
                    _ => mem_equal(&va, &vb),
                }
            }
        };
        self.formula_cache.insert(id, value);
        value
    }

    /// Returns the interpretation the evaluator was constructed with.
    pub fn interpretation(&self) -> &Interpretation {
        &self.interp
    }
}

fn read_mem(mem: &Value, addr: u64) -> u64 {
    match mem {
        Value::Data(base) => mix(0x7264_0000, mix(*base, addr)),
        Value::Mem { base, writes } => {
            for (a, d) in writes.iter().rev() {
                if *a == addr {
                    return *d;
                }
            }
            mix(0x7264_0000, mix(*base, addr))
        }
    }
}

/// Extensional comparison of two memory values over the addresses mentioned in
/// either write list (plus the bases for the unwritten remainder).
fn mem_equal(a: &Value, b: &Value) -> bool {
    let addresses: Vec<u64> = {
        let mut v = Vec::new();
        for m in [a, b] {
            if let Value::Mem { writes, .. } = m {
                v.extend(writes.iter().map(|(addr, _)| *addr));
            }
        }
        v.sort_unstable();
        v.dedup();
        v
    };
    for addr in &addresses {
        if read_mem(a, *addr) != read_mem(b, *addr) {
            return false;
        }
    }
    // Same default content for unwritten addresses.
    let base_a = match a {
        Value::Data(v) => *v,
        Value::Mem { base, .. } => *base,
    };
    let base_b = match b {
        Value::Data(v) => *v,
        Value::Mem { base, .. } => *base,
    };
    base_a == base_b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_lookup_and_default() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let mut interp = Interpretation::new();
        interp.set_term_var(&mut ctx, "a", 42);
        let mut ev = Evaluator::new(&ctx, interp);
        assert_eq!(ev.eval_term(a), Value::Data(42));
        // Unspecified variable gets a deterministic default.
        let vb1 = ev.eval_term(b);
        let vb2 = ev.eval_term(b);
        assert_eq!(vb1, vb2);
    }

    #[test]
    fn uf_is_functionally_consistent() {
        let mut ctx = Context::new();
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let mut interp = Interpretation::new();
        interp.set_term_var(&mut ctx, "a", 7);
        interp.set_term_var(&mut ctx, "b", 7);
        let eq = ctx.eq(fa, fb);
        let mut ev = Evaluator::new(&ctx, interp);
        assert!(ev.eval_formula(eq), "equal args must give equal UF results");
    }

    #[test]
    fn memory_forwarding_semantics() {
        let mut ctx = Context::new();
        let mem = ctx.term_var("mem0");
        let a1 = ctx.term_var("a1");
        let a2 = ctx.term_var("a2");
        let d1 = ctx.term_var("d1");
        let w = ctx.write(mem, a1, d1);
        let r_same = ctx.read(w, a1);
        let r_other = ctx.read(w, a2);
        let r_init_other = ctx.read(mem, a2);
        let mut interp = Interpretation::new();
        interp.set_term_var(&mut ctx, "a1", 1);
        interp.set_term_var(&mut ctx, "a2", 2);
        interp.set_term_var(&mut ctx, "d1", 99);
        let same_eq = ctx.eq(r_same, d1);
        let other_eq = ctx.eq(r_other, r_init_other);
        let mut ev = Evaluator::new(&ctx, interp);
        assert!(
            ev.eval_formula(same_eq),
            "read after write to same address returns the data"
        );
        assert!(
            ev.eval_formula(other_eq),
            "read of other address falls through to initial state"
        );
    }

    #[test]
    fn memory_write_aliasing() {
        let mut ctx = Context::new();
        let mem = ctx.term_var("mem0");
        let a1 = ctx.term_var("a1");
        let a2 = ctx.term_var("a2");
        let d1 = ctx.term_var("d1");
        let d2 = ctx.term_var("d2");
        let w1 = ctx.write(mem, a1, d1);
        let w2 = ctx.write(w1, a2, d2);
        let r = ctx.read(w2, a1);
        // When a1 == a2 the later write wins.
        let mut interp = Interpretation::new();
        interp.set_term_var(&mut ctx, "a1", 5);
        interp.set_term_var(&mut ctx, "a2", 5);
        interp.set_term_var(&mut ctx, "d1", 10);
        interp.set_term_var(&mut ctx, "d2", 20);
        let got_d2 = ctx.eq(r, d2);
        let mut ev = Evaluator::new(&ctx, interp);
        assert!(ev.eval_formula(got_d2));
    }

    #[test]
    fn formula_connectives() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("p");
        let q = ctx.prop_var("q");
        let conj = ctx.and(p, q);
        let disj = ctx.or(p, q);
        let imp = ctx.implies(p, q);
        let mut interp = Interpretation::new();
        interp.set_prop_var(&mut ctx, "p", true);
        interp.set_prop_var(&mut ctx, "q", false);
        let mut ev = Evaluator::new(&ctx, interp);
        assert!(!ev.eval_formula(conj));
        assert!(ev.eval_formula(disj));
        assert!(!ev.eval_formula(imp));
    }

    #[test]
    fn ite_selects_branch() {
        let mut ctx = Context::new();
        let p = ctx.prop_var("sel");
        let a = ctx.term_var("a");
        let b = ctx.term_var("b");
        let t = ctx.ite_term(p, a, b);
        let picks_a = ctx.eq(t, a);
        let picks_b = ctx.eq(t, b);
        let mut interp = Interpretation::new();
        interp.set_prop_var(&mut ctx, "sel", true);
        interp.set_term_var(&mut ctx, "a", 1);
        interp.set_term_var(&mut ctx, "b", 2);
        let mut ev = Evaluator::new(&ctx, interp.clone());
        assert!(ev.eval_formula(picks_a));
        interp.set_prop_var(&mut ctx, "sel", false);
        let mut ev = Evaluator::new(&ctx, interp);
        assert!(ev.eval_formula(picks_b));
    }
}
