//! String interning for variable, uninterpreted-function and predicate names.

use std::collections::HashMap;
use std::fmt;

/// An interned identifier for a name (term variable, propositional variable,
/// uninterpreted function or predicate).
///
/// Symbols are cheap to copy and compare; the actual string is owned by the
/// [`SymbolTable`] of the [`Context`](crate::Context) that created them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Raw index of the symbol inside its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only interner mapping names to [`Symbol`]s and back.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// Returns the name of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` does not belong to this table.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(Symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut table = SymbolTable::new();
        let a1 = table.intern("a");
        let a2 = table.intern("a");
        let b = table.intern("b");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(table.name(a1), "a");
        assert_eq!(table.name(b), "b");
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut table = SymbolTable::new();
        assert!(table.lookup("x").is_none());
        let x = table.intern("x");
        assert_eq!(table.lookup("x"), Some(x));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn iter_preserves_order() {
        let mut table = SymbolTable::new();
        let names = ["pc", "rf", "op", "pc"];
        for n in names {
            table.intern(n);
        }
        let collected: Vec<&str> = table.iter().map(|(_, n)| n).collect();
        assert_eq!(collected, vec!["pc", "rf", "op"]);
    }

    #[test]
    fn symbol_display_is_nonempty() {
        let mut table = SymbolTable::new();
        let s = table.intern("alu");
        assert!(!format!("{s}").is_empty());
    }
}
