//! The solve profiler: how a search *evolves* and where the wall time went.
//!
//! Three cooperating pieces:
//!
//! * [`SolveRecorder`] — a bounded, decimating time-series ring fed by the
//!   solver's heartbeats.  It keeps a fixed number of [`SolveSample`] slots;
//!   on overflow it drops every other retained sample and doubles its
//!   sampling stride (2:1 downsample), so memory stays O(1) no matter how
//!   long the solve runs while the series always spans the whole solve.
//! * [`ProfileSink`] — a [`TraceSink`] that folds span open/close records
//!   into a self/total-time [`PhaseNode`] tree keyed by span name, so
//!   per-instance phase breakdowns (translate → encode → CNF → solve →
//!   certify) come out of the live span stream without storing or replaying
//!   a raw trace.
//! * [`SolveProfile`] — the per-solve artifact tying both together: final
//!   counters, the decimated time-series, restart/solve markers, and the
//!   phase tree, serialized as compact JSONL (one flat object per line,
//!   parseable by [`crate::tracecheck::parse_trace_line`]).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::trace::TraceSink;
use crate::tracecheck::parse_trace_line;

/// One point of a solve time-series: cumulative counters plus the rates and
/// gauges observed over the window since the previous heartbeat.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveSample {
    /// Microseconds since the recorder's epoch (its construction).
    pub t_us: u64,
    /// The solver label (preset name) that produced this sample — portfolio
    /// members share one recorder and are told apart by this.
    pub label: String,
    /// Cumulative conflicts at this point.
    pub conflicts: u64,
    /// Cumulative propagations at this point.
    pub propagations: u64,
    /// Cumulative decisions at this point.
    pub decisions: u64,
    /// Cumulative restarts at this point.
    pub restarts: u64,
    /// Assignment-trail depth at this point (a gauge).
    pub trail_depth: u64,
    /// Learnt-clause database size at this point (a gauge).
    pub learnt_db: u64,
    /// Clause-arena bytes held at this point (a gauge; 0 when the engine
    /// does not report memory).
    pub arena_bytes: u64,
    /// Learnt-clause database bytes held at this point (a gauge; 0 when the
    /// engine does not report memory).
    pub learnt_bytes: u64,
    /// Conflicts per second over the window ending here.
    pub conflicts_per_sec: f64,
    /// Propagations per second over the window ending here.
    pub propagations_per_sec: f64,
    /// Mean decision level of the conflicts in the window ending here.
    pub mean_decision_level: f64,
}

/// A point event on the solve timeline: a solve boundary (`kind = "solve"`,
/// detail names the preset) or a restart burst (`kind = "restart"`, detail
/// is the number of restarts since the previous sample).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolveMarker {
    /// Microseconds since the recorder's epoch.
    pub t_us: u64,
    /// Marker kind: `solve` or `restart`.
    pub kind: String,
    /// Kind-specific detail (preset name, restart count).
    pub detail: String,
}

/// A bounded, decimating time-series recorder.
///
/// Samples are *offered* at heartbeat cadence; the recorder records every
/// `stride`-th offer.  When the retained series reaches `cap` slots it keeps
/// the even-indexed half and doubles the stride, which preserves the first
/// sample and keeps retained samples aligned to the new stride.  The most
/// recent offer is always tracked separately so [`SolveRecorder::series`]
/// can close the series with the true final state.
#[derive(Debug)]
pub struct SolveRecorder {
    cap: usize,
    stride: u64,
    offered: u64,
    samples: Vec<SolveSample>,
    last: Option<SolveSample>,
    markers: Vec<SolveMarker>,
    dropped_markers: u64,
    epoch: Instant,
}

impl SolveRecorder {
    /// The default slot bound: enough for minute-scale solves at full
    /// heartbeat resolution, a few kilobytes retained forever after.
    pub const DEFAULT_CAP: usize = 240;

    /// A recorder bounded to `cap` retained samples (clamped to at least 8).
    pub fn new(cap: usize) -> SolveRecorder {
        SolveRecorder {
            cap: cap.max(8),
            stride: 1,
            offered: 0,
            samples: Vec::new(),
            last: None,
            markers: Vec::new(),
            dropped_markers: 0,
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the recorder was created — the `t_us`
    /// domain of its samples and markers.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Offers one sample.  Every `stride`-th offer is retained; on reaching
    /// the slot bound the series is 2:1 decimated and the stride doubled.
    pub fn offer(&mut self, sample: SolveSample) {
        if self.offered.is_multiple_of(self.stride) {
            self.samples.push(sample.clone());
            if self.samples.len() >= self.cap {
                let mut index = 0usize;
                self.samples.retain(|_| {
                    let keep = index.is_multiple_of(2);
                    index += 1;
                    keep
                });
                self.stride *= 2;
            }
        }
        self.last = Some(sample);
        self.offered += 1;
    }

    /// Records a point marker (bounded by the same slot cap; overflow is
    /// counted, not stored).
    pub fn mark(&mut self, kind: &str, detail: &str) {
        if self.markers.len() >= self.cap {
            self.dropped_markers += 1;
            return;
        }
        self.markers.push(SolveMarker {
            t_us: self.now_us(),
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
    }

    /// The finished time-series: the retained samples, closed with the most
    /// recent offer when decimation dropped it.  Never exceeds the slot cap.
    pub fn series(&self) -> Vec<SolveSample> {
        let mut out = self.samples.clone();
        if let Some(last) = &self.last {
            if out.last() != Some(last) {
                out.push(last.clone());
            }
        }
        out
    }

    /// The retained samples (without the final-state closure).
    pub fn samples(&self) -> &[SolveSample] {
        &self.samples
    }

    /// The recorded markers, in time order.
    pub fn markers(&self) -> &[SolveMarker] {
        &self.markers
    }

    /// The current sampling stride (1 until the first decimation).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total samples offered over the recorder's lifetime.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The slot bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Markers dropped because the marker list hit the slot cap.
    pub fn dropped_markers(&self) -> u64 {
        self.dropped_markers
    }
}

/// A recorder shared between the installing scope and the solver hot path.
pub type SharedSolveRecorder = Arc<Mutex<SolveRecorder>>;

/// A fresh shared recorder with the default slot bound.
pub fn shared_recorder() -> SharedSolveRecorder {
    Arc::new(Mutex::new(SolveRecorder::new(SolveRecorder::DEFAULT_CAP)))
}

/// One node of a phase-time tree: a span name with its aggregate call count,
/// total (inclusive) time and self (exclusive) time, plus its child phases.
/// Sibling spans with the same name are merged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseNode {
    /// The span name this phase aggregates.
    pub name: String,
    /// Number of spans folded into this node.
    pub count: u64,
    /// Total inclusive microseconds (0 for spans never closed).
    pub total_us: u64,
    /// Exclusive microseconds: total minus the children's totals.
    pub self_us: u64,
    /// Child phases, in first-seen order.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    /// Sum of the direct children's total times.
    pub fn children_total_us(&self) -> u64 {
        self.children.iter().map(|c| c.total_us).sum()
    }

    fn merge_from(&mut self, other: PhaseNode) {
        self.count += other.count;
        self.total_us += other.total_us;
        self.self_us += other.self_us;
        for child in other.children {
            match self.children.iter_mut().find(|c| c.name == child.name) {
                Some(existing) => existing.merge_from(child),
                None => self.children.push(child),
            }
        }
    }

    fn push_paths(&self, prefix: &str, out: &mut String) {
        let path = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix}/{}", self.name)
        };
        out.push_str("{\"type\":\"phase\",\"path\":\"");
        crate::json_escape_into(out, &path);
        out.push_str(&format!(
            "\",\"count\":{},\"total_us\":{},\"self_us\":{}}}\n",
            self.count, self.total_us, self.self_us
        ));
        for child in &self.children {
            child.push_paths(&path, out);
        }
    }

    fn insert_path(&mut self, parts: &[&str], count: u64, total_us: u64, self_us: u64) {
        if parts.is_empty() {
            self.count = count;
            self.total_us = total_us;
            self.self_us = self_us;
            return;
        }
        let name = parts[0];
        let child = match self.children.iter_mut().position(|c| c.name == name) {
            Some(index) => &mut self.children[index],
            None => {
                self.children.push(PhaseNode {
                    name: name.to_string(),
                    ..PhaseNode::default()
                });
                self.children.last_mut().expect("just pushed")
            }
        };
        child.insert_path(&parts[1..], count, total_us, self_us);
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{:<width$} x{:<4} total {:>10.3} ms  self {:>10.3} ms\n",
            self.name,
            self.count,
            self.total_us as f64 / 1000.0,
            self.self_us as f64 / 1000.0,
            width = 28usize.saturating_sub(indent.len()),
        ));
        let mut children: Vec<&PhaseNode> = self.children.iter().collect();
        children.sort_by_key(|child| std::cmp::Reverse(child.total_us));
        for child in children {
            child.render_into(depth + 1, out);
        }
    }

    /// A human-readable indented rendering (children sorted by total time).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }
}

/// The per-solve profile artifact: final counters, the decimated
/// time-series, timeline markers, and the phase-time tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveProfile {
    /// The instance (or job) this profile describes.
    pub instance: String,
    /// The solver label: preset name, `portfolio`, or a service backend.
    pub solver: String,
    /// The outcome (`sat` / `unsat` / `unknown` / a verdict spelling).
    pub result: String,
    /// Wall-clock microseconds of the profiled run.
    pub wall_us: u64,
    /// Final sampling stride of the recorder (1 = nothing was decimated).
    pub stride: u64,
    /// Samples offered to the recorder over the run.
    pub offered: u64,
    /// Final conflict count.
    pub conflicts: u64,
    /// Final propagation count.
    pub propagations: u64,
    /// Final decision count.
    pub decisions: u64,
    /// Final restart count.
    pub restarts: u64,
    /// The decimated time-series, oldest first.
    pub samples: Vec<SolveSample>,
    /// Timeline markers, oldest first.
    pub markers: Vec<SolveMarker>,
    /// Phase-time trees (usually one root; empty when no spans were
    /// captured, e.g. a raw benchmark solve with no pipeline around it).
    pub phases: Vec<PhaseNode>,
}

fn push_f64(out: &mut String, key: &str, v: f64) {
    let v = if v.is_finite() { v } else { 0.0 };
    out.push_str(&format!(",\"{key}\":{v}"));
}

impl SolveProfile {
    /// Serializes the profile as JSONL: a `solve_profile` header line, then
    /// one flat object per marker, sample and phase-tree node.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"type\":\"solve_profile\",\"version\":1,\"instance\":\"");
        crate::json_escape_into(&mut out, &self.instance);
        out.push_str("\",\"solver\":\"");
        crate::json_escape_into(&mut out, &self.solver);
        out.push_str("\",\"result\":\"");
        crate::json_escape_into(&mut out, &self.result);
        out.push_str(&format!(
            "\",\"wall_us\":{},\"stride\":{},\"offered\":{},\"conflicts\":{},\"propagations\":{},\"decisions\":{},\"restarts\":{}}}\n",
            self.wall_us,
            self.stride,
            self.offered,
            self.conflicts,
            self.propagations,
            self.decisions,
            self.restarts,
        ));
        for marker in &self.markers {
            out.push_str(&format!(
                "{{\"type\":\"marker\",\"t_us\":{},\"kind\":\"",
                marker.t_us
            ));
            crate::json_escape_into(&mut out, &marker.kind);
            out.push_str("\",\"detail\":\"");
            crate::json_escape_into(&mut out, &marker.detail);
            out.push_str("\"}\n");
        }
        for sample in &self.samples {
            out.push_str(&format!(
                "{{\"type\":\"sample\",\"t_us\":{},\"label\":\"",
                sample.t_us
            ));
            crate::json_escape_into(&mut out, &sample.label);
            out.push_str(&format!(
                "\",\"conflicts\":{},\"propagations\":{},\"decisions\":{},\"restarts\":{},\"trail_depth\":{},\"learnt_db\":{},\"arena_bytes\":{},\"learnt_bytes\":{}",
                sample.conflicts,
                sample.propagations,
                sample.decisions,
                sample.restarts,
                sample.trail_depth,
                sample.learnt_db,
                sample.arena_bytes,
                sample.learnt_bytes,
            ));
            push_f64(&mut out, "conflicts_per_sec", sample.conflicts_per_sec);
            push_f64(
                &mut out,
                "propagations_per_sec",
                sample.propagations_per_sec,
            );
            push_f64(&mut out, "mean_decision_level", sample.mean_decision_level);
            out.push_str("}\n");
        }
        for phase in &self.phases {
            phase.push_paths("", &mut out);
        }
        out
    }

    /// Parses a profile serialized by [`SolveProfile::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, a missing header,
    /// or an unknown record type.
    pub fn parse(text: &str) -> Result<SolveProfile, String> {
        let mut profile = SolveProfile::default();
        let mut saw_header = false;
        // Phase paths arrive depth-first; a synthetic super-root collects
        // them so multiple roots reconstruct cleanly.
        let mut phase_root = PhaseNode::default();
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = parse_trace_line(line).map_err(|e| format!("line {}: {e}", number + 1))?;
            let want_u64 = |key: &str| -> Result<u64, String> {
                record
                    .get_u64(key)
                    .ok_or_else(|| format!("line {}: missing/invalid `{key}`", number + 1))
            };
            let want_str = |key: &str| -> Result<String, String> {
                record
                    .get(key)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {}: missing `{key}`", number + 1))
            };
            let get_f64 =
                |key: &str| -> f64 { record.get(key).and_then(|v| v.parse().ok()).unwrap_or(0.0) };
            match record.kind() {
                "solve_profile" => {
                    if saw_header {
                        return Err(format!("line {}: duplicate header", number + 1));
                    }
                    saw_header = true;
                    profile.instance = want_str("instance")?;
                    profile.solver = want_str("solver")?;
                    profile.result = want_str("result")?;
                    profile.wall_us = want_u64("wall_us")?;
                    profile.stride = want_u64("stride")?;
                    profile.offered = want_u64("offered")?;
                    profile.conflicts = want_u64("conflicts")?;
                    profile.propagations = want_u64("propagations")?;
                    profile.decisions = want_u64("decisions")?;
                    profile.restarts = want_u64("restarts")?;
                }
                "marker" => {
                    if !saw_header {
                        return Err("marker before solve_profile header".to_string());
                    }
                    profile.markers.push(SolveMarker {
                        t_us: want_u64("t_us")?,
                        kind: want_str("kind")?,
                        detail: want_str("detail")?,
                    });
                }
                "sample" => {
                    if !saw_header {
                        return Err("sample before solve_profile header".to_string());
                    }
                    profile.samples.push(SolveSample {
                        t_us: want_u64("t_us")?,
                        label: want_str("label")?,
                        conflicts: want_u64("conflicts")?,
                        propagations: want_u64("propagations")?,
                        decisions: want_u64("decisions")?,
                        restarts: want_u64("restarts")?,
                        trail_depth: want_u64("trail_depth")?,
                        learnt_db: want_u64("learnt_db")?,
                        // Optional with default: profiles recorded before
                        // memory observability landed must keep parsing.
                        arena_bytes: record.get_u64("arena_bytes").unwrap_or(0),
                        learnt_bytes: record.get_u64("learnt_bytes").unwrap_or(0),
                        conflicts_per_sec: get_f64("conflicts_per_sec"),
                        propagations_per_sec: get_f64("propagations_per_sec"),
                        mean_decision_level: get_f64("mean_decision_level"),
                    });
                }
                "phase" => {
                    if !saw_header {
                        return Err("phase before solve_profile header".to_string());
                    }
                    let path = want_str("path")?;
                    let parts: Vec<&str> = path.split('/').collect();
                    phase_root.insert_path(
                        &parts,
                        want_u64("count")?,
                        want_u64("total_us")?,
                        want_u64("self_us")?,
                    );
                }
                other => {
                    return Err(format!(
                        "line {}: unknown record type `{other}`",
                        number + 1
                    ))
                }
            }
        }
        if !saw_header {
            return Err("missing solve_profile header line".to_string());
        }
        profile.phases = phase_root.children;
        Ok(profile)
    }

    /// A human-readable summary: header, phase tree, and the time-series as
    /// an aligned table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "profile {} solver={} result={} wall={:.3}ms conflicts={} propagations={} decisions={} restarts={} (samples={}, stride={}, offered={})\n",
            self.instance,
            self.solver,
            self.result,
            self.wall_us as f64 / 1000.0,
            self.conflicts,
            self.propagations,
            self.decisions,
            self.restarts,
            self.samples.len(),
            self.stride,
            self.offered,
        );
        if !self.phases.is_empty() {
            out.push_str("phases:\n");
            for phase in &self.phases {
                out.push_str(&phase.render_text());
            }
        }
        if !self.markers.is_empty() {
            out.push_str("markers:\n");
            for marker in &self.markers {
                out.push_str(&format!(
                    "  {:>12.3}ms  {} {}\n",
                    marker.t_us as f64 / 1000.0,
                    marker.kind,
                    marker.detail
                ));
            }
        }
        if !self.samples.is_empty() {
            out.push_str(
                "        t_ms     conflicts    confl/s      props/s  trail  learnt  arena_kb  mean_lvl  label\n",
            );
            for s in &self.samples {
                out.push_str(&format!(
                    "{:>12.3} {:>13} {:>10.0} {:>12.0} {:>6} {:>7} {:>9} {:>9.2}  {}\n",
                    s.t_us as f64 / 1000.0,
                    s.conflicts,
                    s.conflicts_per_sec,
                    s.propagations_per_sec,
                    s.trail_depth,
                    s.learnt_db,
                    s.arena_bytes / 1024,
                    s.mean_decision_level,
                    s.label
                ));
            }
        }
        out
    }
}

struct SpanInfo {
    name: String,
    parent: u64,
    dur_us: Option<u64>,
    /// False for placeholders created when a child arrived before its
    /// parent's open record (cross-thread buffer interleaving).
    known: bool,
}

#[derive(Default)]
struct SinkState {
    spans: HashMap<u64, SpanInfo>,
    children: HashMap<u64, Vec<u64>>,
    /// Known spans with no parent, in arrival order.
    roots: Vec<u64>,
    /// Recently extracted root ids: late records of an already-taken tree
    /// (the root's own close, children opened after extraction) are ignored
    /// instead of accumulating as orphans.  Bounded FIFO.
    forgotten: std::collections::VecDeque<u64>,
    dropped: u64,
}

impl SinkState {
    fn forget(&mut self, id: u64) {
        if self.forgotten.len() >= 1024 {
            self.forgotten.pop_front();
        }
        self.forgotten.push_back(id);
    }
}

/// Bound on retained span records: a runaway producer degrades to dropped
/// spans, never unbounded daemon memory.  Consumers ([`ProfileSink::
/// take_tree`], [`ProfileSink::take_roots`]) remove what they read, so
/// steady-state occupancy is one job's spans.
const MAX_TRACKED_SPANS: usize = 1 << 16;

/// A [`TraceSink`] that folds the span stream into phase-time trees as it
/// flows past, optionally teeing every line into an inner sink (so a file
/// trace and the phase accounting can share one pipeline).
pub struct ProfileSink {
    inner: Option<Arc<dyn TraceSink>>,
    state: Mutex<SinkState>,
}

impl Default for ProfileSink {
    fn default() -> Self {
        ProfileSink::new()
    }
}

impl ProfileSink {
    /// A stand-alone profile sink.
    pub fn new() -> ProfileSink {
        ProfileSink {
            inner: None,
            state: Mutex::new(SinkState::default()),
        }
    }

    /// A profile sink that forwards every line to `inner` after absorbing
    /// it.
    pub fn with_inner(inner: Arc<dyn TraceSink>) -> ProfileSink {
        ProfileSink {
            inner: Some(inner),
            state: Mutex::new(SinkState::default()),
        }
    }

    fn absorb(state: &mut SinkState, line: &str) {
        let Ok(record) = parse_trace_line(line) else {
            return;
        };
        match record.kind() {
            "span_open" => {
                let (Some(id), Some(name)) = (record.get_u64("id"), record.get("name")) else {
                    return;
                };
                let parent = record.get_u64("parent").unwrap_or(0);
                if state.forgotten.contains(&id) || state.forgotten.contains(&parent) {
                    return;
                }
                if state.spans.len() >= MAX_TRACKED_SPANS && !state.spans.contains_key(&id) {
                    state.dropped += 1;
                    return;
                }
                match state.spans.get_mut(&id) {
                    Some(info) => {
                        // A child or close record arrived first; fill in.
                        info.name = name.to_string();
                        info.parent = parent;
                        info.known = true;
                    }
                    None => {
                        state.spans.insert(
                            id,
                            SpanInfo {
                                name: name.to_string(),
                                parent,
                                dur_us: None,
                                known: true,
                            },
                        );
                    }
                }
                if parent == 0 {
                    state.roots.push(id);
                } else {
                    state.children.entry(parent).or_default().push(id);
                    if !state.spans.contains_key(&parent) && state.spans.len() < MAX_TRACKED_SPANS {
                        state.spans.insert(
                            parent,
                            SpanInfo {
                                name: String::new(),
                                parent: 0,
                                dur_us: None,
                                known: false,
                            },
                        );
                    }
                }
            }
            "span_close" => {
                let Some(id) = record.get_u64("id") else {
                    return;
                };
                // A close for an unknown id belongs to a subtree already
                // extracted, or to a span opened before the sink was
                // installed: either way, nothing to attribute it to.
                if let Some(info) = state.spans.get_mut(&id) {
                    info.dur_us = record.get_u64("dur_us");
                }
            }
            _ => {}
        }
    }

    fn subtree(state: &SinkState, id: u64) -> PhaseNode {
        let info = &state.spans[&id];
        let mut node = PhaseNode {
            name: if info.name.is_empty() {
                "?".to_string()
            } else {
                info.name.clone()
            },
            count: 1,
            total_us: info.dur_us.unwrap_or(0),
            self_us: 0,
            children: Vec::new(),
        };
        if let Some(kids) = state.children.get(&id) {
            for &kid in kids {
                if !state.spans.contains_key(&kid) {
                    continue;
                }
                let sub = Self::subtree(state, kid);
                match node.children.iter_mut().find(|c| c.name == sub.name) {
                    Some(existing) => existing.merge_from(sub),
                    None => node.children.push(sub),
                }
            }
        }
        let children_total = node.children_total_us();
        if node.total_us == 0 {
            // Never closed: attribute the children's time, nothing more.
            node.total_us = children_total;
        }
        node.self_us = node.total_us.saturating_sub(children_total);
        node
    }

    fn remove_subtree(state: &mut SinkState, root: u64) {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            state.spans.remove(&id);
            if let Some(kids) = state.children.remove(&id) {
                stack.extend(kids);
            }
        }
        state.roots.retain(|&r| r != root);
    }

    /// Extracts (and forgets) the phase tree rooted at span `root`.
    /// `wall_us`, when given, overrides the root's total time — used when
    /// the root span is still open at extraction time (the caller knows the
    /// elapsed wall).  Returns `None` for an unknown root.
    pub fn take_tree(&self, root: u64, wall_us: Option<u64>) -> Option<PhaseNode> {
        let mut state = self.state.lock().expect("profile sink lock");
        if !state.spans.get(&root).map(|s| s.known).unwrap_or(false) {
            return None;
        }
        let mut node = Self::subtree(&state, root);
        if let Some(wall) = wall_us {
            node.total_us = wall;
            node.self_us = wall.saturating_sub(node.children_total_us());
        }
        Self::remove_subtree(&mut state, root);
        state.forget(root);
        Some(node)
    }

    /// Extracts (and forgets) every root span's phase tree, merging roots
    /// with the same name, and resets the sink.
    pub fn take_roots(&self) -> Vec<PhaseNode> {
        let mut state = self.state.lock().expect("profile sink lock");
        let roots = std::mem::take(&mut state.roots);
        let mut out: Vec<PhaseNode> = Vec::new();
        for root in roots {
            if !state.spans.contains_key(&root) {
                continue;
            }
            let node = Self::subtree(&state, root);
            match out.iter_mut().find(|c| c.name == node.name) {
                Some(existing) => existing.merge_from(node),
                None => out.push(node),
            }
        }
        *state = SinkState::default();
        out
    }

    /// Span records dropped under memory pressure.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("profile sink lock").dropped
    }
}

impl TraceSink for ProfileSink {
    fn write(&self, lines: &[String]) {
        {
            let mut state = self.state.lock().expect("profile sink lock");
            for line in lines {
                Self::absorb(&mut state, line);
            }
        }
        if let Some(inner) = &self.inner {
            inner.write(lines);
        }
    }

    fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic xorshift — property tests stay seeded and
    /// dependency-free.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound.max(1)
        }
    }

    fn sample_at(t_us: u64, conflicts: u64) -> SolveSample {
        SolveSample {
            t_us,
            label: "chaff".to_string(),
            conflicts,
            propagations: conflicts * 7,
            decisions: conflicts * 3,
            restarts: conflicts / 100,
            trail_depth: 42,
            learnt_db: conflicts / 2,
            arena_bytes: conflicts * 40,
            learnt_bytes: conflicts * 24,
            conflicts_per_sec: 1000.0,
            propagations_per_sec: 7000.0,
            mean_decision_level: 9.5,
        }
    }

    #[test]
    fn recorder_never_exceeds_bound() {
        let mut rng = Rng(0x5eed_0001);
        for _ in 0..40 {
            let cap = 8 + rng.below(64) as usize;
            let offers = rng.below(5000);
            let mut recorder = SolveRecorder::new(cap);
            let mut t = 0u64;
            for i in 0..offers {
                t += 1 + rng.below(500);
                recorder.offer(sample_at(t, i));
                assert!(recorder.samples().len() <= recorder.cap());
                assert!(recorder.series().len() <= recorder.cap());
            }
        }
    }

    #[test]
    fn decimation_preserves_first_last_and_monotonicity() {
        let mut rng = Rng(0x5eed_0002);
        for _ in 0..40 {
            let offers = 2 + rng.below(4000);
            let mut recorder = SolveRecorder::new(16);
            let mut t = 0u64;
            let mut first = None;
            let mut last = None;
            for i in 0..offers {
                t += 1 + rng.below(300);
                let sample = sample_at(t, i);
                if first.is_none() {
                    first = Some(sample.clone());
                }
                last = Some(sample.clone());
                recorder.offer(sample);
            }
            let series = recorder.series();
            assert_eq!(series.first(), first.as_ref());
            assert_eq!(series.last(), last.as_ref());
            assert!(
                series.windows(2).all(|w| w[0].t_us <= w[1].t_us),
                "timestamps must stay monotone after decimation"
            );
            assert_eq!(recorder.offered(), offers);
        }
    }

    #[test]
    fn empty_profile_roundtrips() {
        let profile = SolveProfile {
            instance: "2xDLX-CC".to_string(),
            solver: "sato".to_string(),
            result: "unknown".to_string(),
            wall_us: 1234,
            stride: 1,
            offered: 0,
            ..SolveProfile::default()
        };
        let parsed = SolveProfile::parse(&profile.to_jsonl()).expect("parse");
        assert_eq!(parsed, profile);
    }

    #[test]
    fn single_sample_profile_roundtrips() {
        let mut phases = PhaseNode {
            name: "serve.job".to_string(),
            count: 1,
            total_us: 1000,
            self_us: 100,
            children: Vec::new(),
        };
        phases.children.push(PhaseNode {
            name: "serve.solve".to_string(),
            count: 2,
            total_us: 900,
            self_us: 900,
            children: Vec::new(),
        });
        let profile = SolveProfile {
            instance: "dlx \"quoted\"/weird".to_string(),
            solver: "chaff".to_string(),
            result: "unsat".to_string(),
            wall_us: 999,
            stride: 2,
            offered: 17,
            conflicts: 3863,
            propagations: 123456,
            decisions: 777,
            restarts: 4,
            samples: vec![sample_at(500, 1000)],
            markers: vec![SolveMarker {
                t_us: 3,
                kind: "solve".to_string(),
                detail: "chaff".to_string(),
            }],
            phases: vec![phases],
        };
        let parsed = SolveProfile::parse(&profile.to_jsonl()).expect("parse");
        assert_eq!(parsed, profile);
    }

    #[test]
    fn profile_sink_folds_spans_into_tree() {
        let sink = ProfileSink::new();
        sink.write(&[
            r#"{"type":"span_open","id":1,"parent":0,"name":"serve.job","thread":1,"ts_us":0}"#.to_string(),
            r#"{"type":"span_open","id":2,"parent":1,"name":"serve.translate","thread":1,"ts_us":1}"#.to_string(),
            r#"{"type":"span_close","id":2,"name":"serve.translate","thread":1,"ts_us":40,"dur_us":39}"#.to_string(),
            r#"{"type":"span_open","id":3,"parent":1,"name":"serve.solve","thread":1,"ts_us":41}"#.to_string(),
            r#"{"type":"span_close","id":3,"name":"serve.solve","thread":1,"ts_us":100,"dur_us":59}"#.to_string(),
            r#"{"type":"span_close","id":1,"name":"serve.job","thread":1,"ts_us":110,"dur_us":110}"#.to_string(),
        ]);
        let tree = sink.take_tree(1, None).expect("root");
        assert_eq!(tree.name, "serve.job");
        assert_eq!(tree.total_us, 110);
        assert_eq!(tree.children_total_us(), 98);
        assert_eq!(tree.self_us, 12);
        // Extraction forgets the subtree.
        assert!(sink.take_tree(1, None).is_none());
    }

    #[test]
    fn profile_sink_handles_child_before_parent() {
        let sink = ProfileSink::new();
        // The child thread's buffer drained first: child open/close arrive
        // before the parent's open.
        sink.write(&[
            r#"{"type":"span_open","id":9,"parent":5,"name":"translate","thread":2,"ts_us":2}"#
                .to_string(),
            r#"{"type":"span_close","id":9,"name":"translate","thread":2,"ts_us":30,"dur_us":28}"#
                .to_string(),
        ]);
        sink.write(&[
            r#"{"type":"span_open","id":5,"parent":0,"name":"serve.job","thread":1,"ts_us":0}"#
                .to_string(),
        ]);
        let tree = sink.take_tree(5, Some(50)).expect("root known after open");
        assert_eq!(tree.name, "serve.job");
        assert_eq!(tree.total_us, 50);
        assert_eq!(tree.children[0].name, "translate");
        assert_eq!(tree.children[0].total_us, 28);
        assert_eq!(tree.self_us, 22);
    }

    #[test]
    fn late_records_of_extracted_trees_are_ignored() {
        let sink = ProfileSink::new();
        sink.write(&[
            r#"{"type":"span_open","id":1,"parent":0,"name":"serve.job","thread":1,"ts_us":0}"#
                .to_string(),
        ]);
        assert!(sink.take_tree(1, Some(10)).is_some());
        // The job's own close and a child opened after extraction (the
        // respond span) must not accumulate as orphans.
        sink.write(&[
            r#"{"type":"span_open","id":2,"parent":1,"name":"serve.respond","thread":1,"ts_us":11}"#.to_string(),
            r#"{"type":"span_close","id":2,"name":"serve.respond","thread":1,"ts_us":12,"dur_us":1}"#.to_string(),
            r#"{"type":"span_close","id":1,"name":"serve.job","thread":1,"ts_us":13,"dur_us":13}"#.to_string(),
        ]);
        assert!(sink.take_roots().is_empty());
    }

    #[test]
    fn take_roots_merges_same_name_roots() {
        let sink = ProfileSink::new();
        sink.write(&[
            r#"{"type":"span_open","id":1,"parent":0,"name":"translate","thread":1,"ts_us":0}"#
                .to_string(),
            r#"{"type":"span_close","id":1,"name":"translate","thread":1,"ts_us":10,"dur_us":10}"#
                .to_string(),
            r#"{"type":"span_open","id":2,"parent":0,"name":"translate","thread":1,"ts_us":20}"#
                .to_string(),
            r#"{"type":"span_close","id":2,"name":"translate","thread":1,"ts_us":50,"dur_us":30}"#
                .to_string(),
        ]);
        let roots = sink.take_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].count, 2);
        assert_eq!(roots[0].total_us, 40);
        assert!(sink.take_roots().is_empty());
    }
}
