//! Exposition encoders for [`Snapshot`]: Prometheus text, JSON, and flat
//! `key value` pairs, plus a validator for the Prometheus format used by
//! tests and `velvc`.

use crate::metrics::{MetricSample, MetricValue, Snapshot};

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",...}` (possibly with an extra `le` pair), or nothing when
/// there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

fn sample_type(sample: &MetricSample) -> &'static str {
    match sample.value {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
    }
}

impl Snapshot {
    /// Encodes the snapshot as Prometheus text exposition (version 0.0.4):
    /// `# HELP`/`# TYPE` headers once per metric family, one sample line per
    /// label set, histograms expanded into cumulative `_bucket{le=...}`
    /// series plus `_sum` and `_count`.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for sample in &self.metrics {
            if last_name != Some(sample.name.as_str()) {
                out.push_str(&format!(
                    "# HELP {} {}\n# TYPE {} {}\n",
                    sample.name,
                    escape_help(&sample.help),
                    sample.name,
                    sample_type(sample)
                ));
                last_name = Some(sample.name.as_str());
            }
            match &sample.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        sample.name,
                        render_labels(&sample.labels, None)
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        sample.name,
                        render_labels(&sample.labels, None)
                    ));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        cumulative += count;
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            sample.name,
                            render_labels(&sample.labels, Some(&bound.to_string()))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, Some("+Inf")),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }

    /// Encodes the snapshot as a JSON document:
    /// `{"metrics":[{"name":...,"labels":{...},"type":...,...}]}`.
    pub fn json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (index, sample) in self.metrics.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            crate::json_escape_into(&mut out, &sample.name);
            out.push_str("\",\"labels\":{");
            for (li, (k, v)) in sample.labels.iter().enumerate() {
                if li > 0 {
                    out.push(',');
                }
                out.push('"');
                crate::json_escape_into(&mut out, k);
                out.push_str("\":\"");
                crate::json_escape_into(&mut out, v);
                out.push('"');
            }
            out.push_str("},\"type\":\"");
            out.push_str(sample_type(sample));
            out.push_str("\",");
            match &sample.value {
                MetricValue::Counter(v) => out.push_str(&format!("\"value\":{v}")),
                MetricValue::Gauge(v) => out.push_str(&format!("\"value\":{v}")),
                MetricValue::Histogram(h) => {
                    out.push_str("\"buckets\":[");
                    for (bi, (bound, count)) in h.bounds.iter().zip(&h.counts).enumerate() {
                        if bi > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{{\"le\":{bound},\"count\":{count}}}"));
                    }
                    if !h.bounds.is_empty() {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"le\":\"+Inf\",\"count\":{}}}],\"sum\":{},\"count\":{}",
                        h.counts.last().copied().unwrap_or(0),
                        h.sum,
                        h.count
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Flattens the snapshot into `(key, value)` string pairs suitable for
    /// the `velvd` wire `stats` response: counters and gauges one pair each
    /// (labels rendered inline in the key), histograms as `_count` and
    /// `_sum` pairs.  Keys contain no spaces, so `key value` lines parse
    /// unambiguously.
    pub fn flat_fields(&self) -> Vec<(String, String)> {
        let mut fields = Vec::with_capacity(self.metrics.len());
        for sample in &self.metrics {
            let key = sample.full_name().replace(' ', "_");
            match &sample.value {
                MetricValue::Counter(v) => fields.push((key, v.to_string())),
                MetricValue::Gauge(v) => fields.push((key, v.to_string())),
                MetricValue::Histogram(h) => {
                    let base = &sample.name;
                    let suffixed = |suffix: &str| {
                        let mut renamed = sample.clone();
                        renamed.name = format!("{base}{suffix}");
                        renamed.full_name().replace(' ', "_")
                    };
                    fields.push((suffixed("_count"), h.count.to_string()));
                    fields.push((suffixed("_sum"), h.sum.to_string()));
                }
            }
        }
        fields
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses one `{k="v",...}` label block; returns the label keys.
fn parse_label_block(block: &str) -> Result<Vec<String>, String> {
    let mut keys = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{{{block}}}`"))?;
        let key = &rest[..eq];
        if !valid_metric_name(key) {
            return Err(format!("bad label name `{key}`"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value of `{key}` is not quoted"));
        }
        // Scan the quoted value.  Only `\\`, `\"` and `\n` are legal escapes
        // in the exposition format, and control characters must arrive
        // escaped — a raw newline or tab in a label value is exactly the
        // corruption an unescaped renderer produces.
        let mut end = None;
        let bytes = rest.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => {
                    match bytes.get(i + 1) {
                        Some(b'\\') | Some(b'"') | Some(b'n') => {}
                        Some(other) => {
                            return Err(format!(
                                "unknown escape `\\{}` in label value of `{key}`",
                                *other as char
                            ));
                        }
                        None => {
                            return Err(format!("dangling escape in label value of `{key}`"));
                        }
                    }
                    i += 2;
                }
                b'"' => {
                    end = Some(i);
                    break;
                }
                c if c.is_ascii_control() && c != b'\t' => {
                    return Err(format!(
                        "raw control character 0x{c:02x} in label value of `{key}` \
                         (must be escaped)"
                    ));
                }
                _ => i += 1,
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value for `{key}`"))?;
        keys.push(key.to_string());
        rest = &rest[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value in `{{{block}}}`"));
        }
    }
    Ok(keys)
}

/// Validates Prometheus text exposition: well-formed `# HELP`/`# TYPE`
/// headers, every sample line parseable as `name[{labels}] value`, every
/// sample belonging to a declared metric family (histogram samples may use
/// the `_bucket`/`_sum`/`_count` suffixes, and `_bucket` samples must carry
/// an `le` label).
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    for (number, line) in text.lines().enumerate() {
        let number = number + 1;
        let fail = |message: String| Err(format!("line {number}: {message}"));
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" if !valid_metric_name(name) => {
                    return fail(format!("HELP for invalid metric name `{name}`"));
                }
                "HELP" => {}
                "TYPE" => {
                    let kind = parts.next().unwrap_or("").trim();
                    if !valid_metric_name(name) {
                        return fail(format!("TYPE for invalid metric name `{name}`"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return fail(format!("unknown metric type `{kind}`"));
                    }
                    types.insert(name.to_string(), kind.to_string());
                }
                _ => {} // Other comments are allowed and ignored.
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_and_labels, value_part) = match line.find('{') {
            Some(brace) => {
                let close = match line.rfind('}') {
                    Some(c) if c > brace => c,
                    _ => return fail(format!("unbalanced label braces in `{line}`")),
                };
                (
                    (&line[..brace], Some(&line[brace + 1..close])),
                    line[close + 1..].trim(),
                )
            }
            None => {
                let space = match line.find(' ') {
                    Some(s) => s,
                    None => return fail(format!("sample line without a value: `{line}`")),
                };
                ((&line[..space], None), line[space + 1..].trim())
            }
        };
        let (name, labels) = name_and_labels;
        if !valid_metric_name(name) {
            return fail(format!("invalid metric name `{name}`"));
        }
        let label_keys = match labels {
            Some(block) => match parse_label_block(block) {
                Ok(keys) => keys,
                Err(e) => return fail(e),
            },
            None => Vec::new(),
        };
        let mut value_fields = value_part.split_whitespace();
        let value = value_fields.next().unwrap_or("");
        let value_ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
        if !value_ok {
            return fail(format!("unparseable sample value `{value}`"));
        }
        if let Some(timestamp) = value_fields.next() {
            if timestamp.parse::<i64>().is_err() {
                return fail(format!("unparseable timestamp `{timestamp}`"));
            }
        }
        // The sample must belong to a declared family.
        let family = types.get(name).cloned().or_else(|| {
            ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                name.strip_suffix(suffix)
                    .and_then(|base| types.get(base))
                    .filter(|kind| kind.as_str() == "histogram" || kind.as_str() == "summary")
                    .cloned()
            })
        });
        let Some(_family) = family else {
            return fail(format!("sample `{name}` has no preceding # TYPE header"));
        };
        if name.ends_with("_bucket") && !label_keys.iter().any(|k| k == "le") {
            let base = name.trim_end_matches("_bucket");
            if types.get(base).map(String::as_str) == Some("histogram") {
                return fail(format!("histogram sample `{name}` lacks an `le` label"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let registry = Registry::new();
        registry.counter("a_total", "Counts a.").add(7);
        registry
            .counter_with("b_total", &[("preset", "chaff")], "Counts b.")
            .add(2);
        registry.gauge("g", "A gauge.").set(-3);
        let h = registry.histogram("h_micros", "Latencies.", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        registry
    }

    #[test]
    fn prometheus_text_is_valid_and_complete() {
        let text = sample_registry().snapshot().prometheus_text();
        validate_prometheus_text(&text).unwrap();
        assert!(text.contains("a_total 7"), "{text}");
        assert!(text.contains("b_total{preset=\"chaff\"} 2"), "{text}");
        assert!(text.contains("g -3"), "{text}");
        assert!(text.contains("h_micros_bucket{le=\"10\"} 1"), "{text}");
        assert!(text.contains("h_micros_bucket{le=\"100\"} 2"), "{text}");
        assert!(text.contains("h_micros_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("h_micros_sum 555"), "{text}");
        assert!(text.contains("h_micros_count 3"), "{text}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus_text("not a metric line").is_err());
        assert!(validate_prometheus_text("x_total 1").is_err(), "no TYPE");
        assert!(validate_prometheus_text("# TYPE x wibble\nx 1").is_err());
        assert!(
            validate_prometheus_text("# TYPE x counter\nx{le=\"oops} 1").is_err(),
            "unterminated label"
        );
        assert!(validate_prometheus_text("# TYPE x counter\nx notanumber").is_err());
    }

    #[test]
    fn newline_label_values_are_escaped_and_validate() {
        // A label value containing a newline (or quote/backslash) must
        // render as escaped exposition text the validator accepts...
        let registry = Registry::new();
        registry
            .counter_with(
                "evil_total",
                &[("reason", "line one\nline two \"q\" \\x")],
                "Evil.",
            )
            .inc();
        let text = registry.snapshot().prometheus_text();
        validate_prometheus_text(&text).unwrap();
        assert!(text.contains("\\n"), "newline escaped: {text}");
        assert!(!text.contains("line one\nline"), "no raw newline: {text}");

        // ...while hand-built text with the corruption an unescaped renderer
        // would emit is rejected: raw control characters and unknown escapes.
        let raw_cr = "# TYPE x counter\nx{a=\"b\rc\"} 1";
        assert!(validate_prometheus_text(raw_cr).is_err(), "raw CR");
        let bad_escape = "# TYPE x counter\nx{a=\"b\\qc\"} 1";
        assert!(
            validate_prometheus_text(bad_escape).is_err(),
            "unknown escape"
        );
        let dangling = "# TYPE x counter\nx{a=\"b\\";
        assert!(
            validate_prometheus_text(dangling).is_err(),
            "dangling escape"
        );
        let good = "# TYPE x counter\nx{a=\"b\\nc\"} 1";
        assert!(validate_prometheus_text(good).is_ok(), "escaped newline");
    }

    #[test]
    fn flat_fields_have_no_spaces_and_cover_everything() {
        let fields = sample_registry().snapshot().flat_fields();
        assert!(fields.iter().all(|(k, _)| !k.contains(' ')));
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"a_total"));
        assert!(keys.contains(&"b_total{preset=\"chaff\"}"));
        assert!(keys.contains(&"g"));
        assert!(keys.contains(&"h_micros_count"));
        assert!(keys.contains(&"h_micros_sum"));
    }

    #[test]
    fn json_mentions_every_metric() {
        let json = sample_registry().snapshot().json();
        for name in ["a_total", "b_total", "g", "h_micros"] {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "{json}");
        }
        assert!(json.contains("\"le\":\"+Inf\""), "{json}");
    }
}
