//! The metrics registry: named counters, gauges and fixed-bucket histograms.
//!
//! Registration is idempotent — asking for the same `(name, labels)` twice
//! returns handles backed by the same cell, so call sites can re-register on
//! every construction (e.g. once per solver instance) without double
//! counting.  Asking for the same key with a *different metric kind* is a
//! programming error and panics.
//!
//! Handles are cheap `Arc` clones over atomics; updates are lock-free.  The
//! registry mutex is taken only at registration and snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry (a free-standing cell).
    pub fn detached() -> Counter {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge {
            cell: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts; `bounds.len() + 1`
    /// cells, the last one the `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A histogram over `u64` observations with fixed bucket bounds.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// A histogram not attached to any registry.
    pub fn detached(bounds: &[u64]) -> Histogram {
        Histogram::new(bounds)
    }

    /// Records one observation.  A value `v` lands in the first bucket whose
    /// bound is `>= v` (bounds are inclusive upper edges, Prometheus `le`
    /// semantics), or in the overflow bucket.
    #[inline]
    pub fn observe(&self, v: u64) {
        let index = self.core.bounds.partition_point(|&bound| bound < v);
        self.core.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a pre-bucketed batch of observations into the histogram in one
    /// pass: `counts[i]` observations land in bucket `i` (the layout of
    /// [`HistogramSnapshot::counts`]: `bounds.len() + 1` cells, overflow
    /// last), `sum` is the sum of the underlying values.  This lets a hot
    /// loop accumulate into plain local counters and publish at heartbeat
    /// granularity instead of paying one atomic RMW per observation.
    pub fn observe_bucketed(&self, counts: &[u64], sum: u64) {
        debug_assert_eq!(counts.len(), self.core.buckets.len());
        let last = self.core.buckets.len() - 1;
        let mut total = 0u64;
        for (index, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            self.core.buckets[index.min(last)].fetch_add(n, Ordering::Relaxed);
            total += n;
        }
        if total == 0 {
            return;
        }
        self.core.sum.fetch_add(sum, Ordering::Relaxed);
        self.core.count.fetch_add(total, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.core.bounds.clone(),
            counts: self
                .core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.core.sum.load(Ordering::Relaxed),
            count: self.core.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; one more entry than `bounds`,
    /// the last being the `+Inf` overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the observed
    /// distribution by linear interpolation inside the bucket containing the
    /// target rank (Prometheus `histogram_quantile` semantics).  Values in
    /// the `+Inf` overflow bucket are attributed to the last finite bound —
    /// the estimate is clamped, never extrapolated.  Returns `0.0` for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            let previous = cumulative;
            cumulative += bucket_count;
            if (cumulative as f64) < rank || bucket_count == 0 {
                continue;
            }
            if index >= self.bounds.len() {
                // Overflow bucket: clamp to the last finite bound.
                return self.bounds[self.bounds.len() - 1] as f64;
            }
            let upper = self.bounds[index] as f64;
            let lower = if index == 0 {
                0.0
            } else {
                self.bounds[index - 1] as f64
            };
            let within = (rank - previous as f64) / bucket_count as f64;
            return lower + within.clamp(0.0, 1.0) * (upper - lower);
        }
        self.bounds[self.bounds.len() - 1] as f64
    }
}

/// The value of one metric in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram reading.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The reading as a `u64`: the counter value, a non-negative gauge
    /// value, or `None` for histograms and negative gauges.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            MetricValue::Gauge(v) => u64::try_from(*v).ok(),
            MetricValue::Histogram(_) => None,
        }
    }
}

/// One metric sample in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// The metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The help text supplied at registration.
    pub help: String,
    /// The reading.
    pub value: MetricValue,
}

impl MetricSample {
    /// The name with labels rendered inline: `name` or `name{k="v",...}`.
    pub fn full_name(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = self.name.clone();
        out.push('{');
        for (index, (k, v)) in self.labels.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            crate::json_escape_into(&mut out, v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// A point-in-time view of every metric in a [`Registry`], ordered by name
/// then labels.  See [`Snapshot::prometheus_text`], [`Snapshot::json`] and
/// [`Snapshot::flat_fields`] for the encodings.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The samples, sorted by `(name, labels)`.
    pub metrics: Vec<MetricSample>,
}

impl Snapshot {
    /// The sample with the given name and labels, if present.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// The value of an unlabelled (or uniquely named) counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match m.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
    }
}

enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    handle: Handle,
}

type Key = (String, Vec<(String, String)>);

#[derive(Default)]
struct RegistryInner {
    entries: Mutex<BTreeMap<Key, Entry>>,
}

/// A collection of named metrics; see the [module docs](self) for the
/// registration contract.  Cloning a `Registry` clones a handle to the same
/// underlying collection.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut owned: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    owned.sort();
    owned
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        build: impl FnOnce() -> Handle,
        want: &'static str,
    ) -> Handle {
        let key = (name.to_string(), owned_labels(labels));
        let mut entries = self.inner.entries.lock().expect("registry lock");
        let entry = entries.entry(key).or_insert_with(|| Entry {
            help: help.to_string(),
            handle: build(),
        });
        assert_eq!(
            entry.handle.kind(),
            want,
            "metric `{name}` is already registered as a {}, not a {want}",
            entry.handle.kind()
        );
        match &entry.handle {
            Handle::Counter(c) => Handle::Counter(c.clone()),
            Handle::Gauge(g) => Handle::Gauge(g.clone()),
            Handle::Histogram(h) => Handle::Histogram(h.clone()),
        }
    }

    /// Registers (or looks up) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers (or looks up) a labelled counter.
    ///
    /// # Panics
    ///
    /// Panics when `(name, labels)` is already registered as another kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.register(
            name,
            labels,
            help,
            || Handle::Counter(Counter::detached()),
            "counter",
        ) {
            Handle::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or looks up) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or looks up) a labelled gauge.
    ///
    /// # Panics
    ///
    /// Panics when `(name, labels)` is already registered as another kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.register(
            name,
            labels,
            help,
            || Handle::Gauge(Gauge::detached()),
            "gauge",
        ) {
            Handle::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or looks up) an unlabelled histogram with the given
    /// inclusive upper bucket bounds (strictly increasing; an implicit
    /// `+Inf` bucket is appended).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, &[], help, bounds)
    }

    /// Registers (or looks up) a labelled histogram.
    ///
    /// # Panics
    ///
    /// Panics when `(name, labels)` is already registered as another kind.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        bounds: &[u64],
    ) -> Histogram {
        match self.register(
            name,
            labels,
            help,
            || Handle::Histogram(Histogram::new(bounds)),
            "histogram",
        ) {
            Handle::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.inner.entries.lock().expect("registry lock");
        let metrics = entries
            .iter()
            .map(|((name, labels), entry)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                help: entry.help.clone(),
                value: match &entry.handle {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                    Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { metrics }
    }
}

/// The process-wide default registry: solver, translation and proof metrics
/// land here.  (`velv_serve` services carry their own per-instance
/// [`Registry`] instead, so concurrent services never mix counters.)
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let registry = Registry::new();
        let a = registry.counter("x_total", "X.");
        let b = registry.counter("x_total", "X.");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(registry.snapshot().counter("x_total"), Some(3));
    }

    #[test]
    fn labels_separate_series() {
        let registry = Registry::new();
        registry
            .counter_with("y_total", &[("preset", "chaff")], "Y.")
            .inc();
        registry
            .counter_with("y_total", &[("preset", "sato")], "Y.")
            .add(5);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot
                .get("y_total", &[("preset", "chaff")])
                .map(|m| m.value.clone()),
            Some(MetricValue::Counter(1))
        );
        assert_eq!(
            snapshot
                .get("y_total", &[("preset", "sato")])
                .map(|m| m.value.clone()),
            Some(MetricValue::Counter(5))
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("z", "Z.");
        registry.gauge("z", "Z.");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::detached();
        g.add(10);
        g.sub(25);
        assert_eq!(g.get(), -15);
        g.set(4);
        assert_eq!(g.get(), 4);
    }
}
