//! The span/event tracer: JSONL records buffered per thread, drained to a
//! pluggable sink.
//!
//! With no sink installed and the flight recorder disarmed ([`enabled`] is
//! false) every call site collapses to one relaxed atomic load — spans
//! return a no-op guard, events return immediately.  Install a sink
//! ([`install_sink`]) or arm the flight recorder ([`crate::flight::arm`])
//! to turn record production on process-wide; records reach the sink only
//! while one is installed, and reach the flight ring only while it is
//! armed.
//!
//! Records are flat JSON objects, one per line:
//!
//! ```text
//! {"type":"span_open","id":7,"parent":3,"name":"solve","thread":2,"ts_us":123,...}
//! {"type":"span_close","id":7,"name":"solve","thread":2,"ts_us":456,"dur_us":333}
//! {"type":"event","name":"solver.heartbeat","parent":7,"thread":2,"ts_us":300,...}
//! ```
//!
//! `id` is process-unique; `parent` is the id of the innermost span open on
//! the emitting thread (0 for roots).  `ts_us` counts microseconds since the
//! first trace record of the process.  Span guards may be moved across
//! threads; the close record is emitted wherever the guard is dropped, and
//! open/close records pair by `id` (what [`crate::check_trace`] verifies).

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Recomputes the [`enabled`] gate: records are produced while a sink is
/// installed *or* the flight recorder is armed ([`crate::flight::arm`]).
pub(crate) fn refresh_enabled() {
    ENABLED.store(
        SINK_ACTIVE.load(Ordering::SeqCst) || crate::flight::armed(),
        Ordering::SeqCst,
    );
}

/// How many buffered lines a thread accumulates before draining to the sink.
const FLUSH_THRESHOLD: usize = 128;

/// Where drained trace lines go.  Implementations must tolerate concurrent
/// `write` calls from several threads.
pub trait TraceSink: Send + Sync {
    /// Appends the given JSONL lines (no trailing newlines included).
    fn write(&self, lines: &[String]);
    /// Flushes any buffering the sink itself does.
    fn flush(&self) {}
}

/// A [`TraceSink`] appending lines to a file (JSONL).
pub struct JsonlFileSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlFileSink {
    /// Creates (truncating) the trace file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlFileSink> {
        Ok(JsonlFileSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl TraceSink for JsonlFileSink {
    fn write(&self, lines: &[String]) {
        let mut out = self.out.lock().expect("trace file lock");
        for line in lines {
            let _ = writeln!(out, "{line}");
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace file lock").flush();
    }
}

/// A [`TraceSink`] collecting lines in memory (for tests).
#[derive(Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of the collected lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink lock").clone()
    }

    /// The collected lines joined as one JSONL document.
    pub fn contents(&self) -> String {
        self.lines().join("\n")
    }
}

impl TraceSink for MemorySink {
    fn write(&self, lines: &[String]) {
        self.lines
            .lock()
            .expect("memory sink lock")
            .extend_from_slice(lines);
    }
}

fn sink_slot() -> &'static Mutex<Option<Arc<dyn TraceSink>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn TraceSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

type SharedBuffer = Arc<Mutex<Vec<String>>>;
type BufferRegistry = Mutex<Vec<Weak<Mutex<Vec<String>>>>>;

/// Every live thread buffer, so [`flush`] can drain threads other than the
/// caller's (e.g. worker threads at `velvd` shutdown).
fn buffer_registry() -> &'static BufferRegistry {
    static REGISTRY: OnceLock<BufferRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

struct ThreadTrace {
    id: u64,
    buffer: SharedBuffer,
    stack: RefCell<Vec<u64>>,
}

impl ThreadTrace {
    fn new() -> ThreadTrace {
        let buffer: SharedBuffer = Arc::new(Mutex::new(Vec::new()));
        let mut registry = buffer_registry().lock().expect("trace buffer registry");
        registry.retain(|weak| weak.strong_count() > 0);
        registry.push(Arc::downgrade(&buffer));
        drop(registry);
        ThreadTrace {
            id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            buffer,
            stack: RefCell::new(Vec::new()),
        }
    }
}

impl Drop for ThreadTrace {
    fn drop(&mut self) {
        drain_buffer(&self.buffer);
    }
}

thread_local! {
    static THREAD: ThreadTrace = ThreadTrace::new();
}

fn drain_buffer(buffer: &SharedBuffer) {
    let lines: Vec<String> = {
        let mut locked = buffer.lock().expect("trace buffer lock");
        std::mem::take(&mut *locked)
    };
    if lines.is_empty() {
        return;
    }
    let sink = sink_slot().lock().expect("trace sink lock").clone();
    if let Some(sink) = sink {
        sink.write(&lines);
    }
}

fn emit(line: String) {
    crate::flight::record(&line);
    if !SINK_ACTIVE.load(Ordering::Relaxed) {
        // Flight-only mode: the ring has the record; skip the sink buffers.
        return;
    }
    // `try_with`: a record emitted while this thread's TLS is already being
    // torn down is silently dropped instead of panicking.
    let _ = THREAD.try_with(|thread| {
        let full = {
            let mut buffer = thread.buffer.lock().expect("trace buffer lock");
            buffer.push(line);
            buffer.len() >= FLUSH_THRESHOLD
        };
        if full {
            drain_buffer(&thread.buffer);
        }
    });
}

/// Whether trace records are being produced — a sink is installed or the
/// flight recorder is armed.  One relaxed load; the gate every
/// instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs the process-wide trace sink and turns tracing on.  Replacing an
/// existing sink flushes it first.
pub fn install_sink(sink: Arc<dyn TraceSink>) {
    flush();
    *sink_slot().lock().expect("trace sink lock") = Some(sink);
    SINK_ACTIVE.store(true, Ordering::SeqCst);
    refresh_enabled();
}

/// Stops feeding the sink, drains every thread buffer into it, flushes it,
/// and uninstalls it.  Tracing stays on if the flight recorder is armed
/// (records then go to the ring only).
pub fn uninstall_sink() {
    SINK_ACTIVE.store(false, Ordering::SeqCst);
    refresh_enabled();
    flush();
    *sink_slot().lock().expect("trace sink lock") = None;
}

/// Drains every live thread buffer into the installed sink and flushes the
/// sink.  Called at graceful shutdown so killed runs keep their telemetry
/// tail; cheap when tracing is off.
pub fn flush() {
    let buffers: Vec<SharedBuffer> = {
        let mut registry = buffer_registry().lock().expect("trace buffer registry");
        registry.retain(|weak| weak.strong_count() > 0);
        registry.iter().filter_map(Weak::upgrade).collect()
    };
    for buffer in buffers {
        drain_buffer(&buffer);
    }
    let sink = sink_slot().lock().expect("trace sink lock").clone();
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// A typed field value attached to spans and events.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl FieldValue {
    fn render_into(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(s) => {
                out.push('"');
                crate::json_escape_into(out, s);
                out.push('"');
            }
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

fn push_fields(out: &mut String, fields: &[(&str, FieldValue)]) {
    for (key, value) in fields {
        out.push_str(",\"");
        crate::json_escape_into(out, key);
        out.push_str("\":");
        value.render_into(out);
    }
}

/// The id of the innermost span open on this thread, or 0.  Capture it
/// before spawning a thread and pass it to [`span_child_of`] to keep the
/// parent/child chain across the spawn.
pub fn current_span_id() -> u64 {
    if !enabled() {
        return 0;
    }
    THREAD
        .try_with(|thread| thread.stack.borrow().last().copied().unwrap_or(0))
        .unwrap_or(0)
}

/// An open span; emits the matching `span_close` record (with duration) on
/// drop.  Obtained from [`span`], [`span_fields`] or [`span_child_of`]; a
/// guard with id 0 is the disabled no-op.
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// The span id (0 when tracing was disabled at open time).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let _ = THREAD.try_with(|thread| {
            // LIFO pop when possible; scan-remove tolerates guards moved
            // across threads or dropped out of order.
            let mut stack = thread.stack.borrow_mut();
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else if let Some(position) = stack.iter().position(|&id| id == self.id) {
                stack.remove(position);
            }
            drop(stack);
            let duration = self
                .start
                .map(|s| s.elapsed().as_micros() as u64)
                .unwrap_or(0);
            let line = format!(
                "{{\"type\":\"span_close\",\"id\":{},\"name\":\"{}\",\"thread\":{},\"ts_us\":{},\"dur_us\":{}}}",
                self.id,
                self.name,
                thread.id,
                now_us(),
                duration
            );
            emit(line);
        });
    }
}

fn open_span(name: &'static str, parent: Option<u64>, fields: &[(&str, FieldValue)]) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            name,
            start: None,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let _ = THREAD.try_with(|thread| {
        let parent = parent.unwrap_or_else(|| thread.stack.borrow().last().copied().unwrap_or(0));
        thread.stack.borrow_mut().push(id);
        let mut line = format!(
            "{{\"type\":\"span_open\",\"id\":{id},\"parent\":{parent},\"name\":\"{name}\",\"thread\":{},\"ts_us\":{}",
            thread.id,
            now_us()
        );
        push_fields(&mut line, fields);
        line.push('}');
        emit(line);
    });
    SpanGuard {
        id,
        name,
        start: Some(Instant::now()),
    }
}

/// Opens a span nested under the innermost open span of this thread.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            name,
            start: None,
        };
    }
    open_span(name, None, &[])
}

/// Opens a span with attached fields.
#[inline]
pub fn span_fields(name: &'static str, fields: &[(&str, FieldValue)]) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            name,
            start: None,
        };
    }
    open_span(name, None, fields)
}

/// Opens a span with an explicit parent id (0 for a root) — the cross-thread
/// variant; see [`current_span_id`].
pub fn span_child_of(name: &'static str, parent: u64, fields: &[(&str, FieldValue)]) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            name,
            start: None,
        };
    }
    open_span(name, Some(parent), fields)
}

/// Emits a point event, parented to the innermost open span of this thread.
pub fn event(name: &str, fields: &[(&str, FieldValue)]) {
    if !enabled() {
        return;
    }
    let _ = THREAD.try_with(|thread| {
        let parent = thread.stack.borrow().last().copied().unwrap_or(0);
        let mut line = String::from("{\"type\":\"event\",\"name\":\"");
        crate::json_escape_into(&mut line, name);
        line.push_str(&format!(
            "\",\"parent\":{parent},\"thread\":{},\"ts_us\":{}",
            thread.id,
            now_us()
        ));
        push_fields(&mut line, fields);
        line.push('}');
        emit(line);
    });
}
