//! The flight recorder: a fixed-size, lock-light ring of the most recent
//! trace records, kept in memory even when no sink is installed, and dumped
//! to a `FLIGHT-<ts>.jsonl` file when something goes wrong.
//!
//! The ring is fed by the same per-thread span/event probes that feed the
//! sink (see [`crate::span`], [`crate::event`]): once [`arm`] is called,
//! every record is also copied into the ring, so the last
//! [`FLIGHT_CAPACITY`] records of the process are always available for a
//! post-mortem — a worker panic, a poisoned store, a shed storm — without
//! paying for a sink on the happy path.
//!
//! Writers claim a slot with one atomic `fetch_add` and take only that
//! slot's mutex, so concurrent recording threads contend per-slot, never on
//! a global lock.  [`snapshot`] reads the slots oldest-first; [`dump`]
//! writes a snapshot (prefixed with a `flight.dump` event naming the
//! trigger) into the configured dump directory.
//!
//! The recorder starts *disarmed* — process start-up pays nothing, and the
//! disabled-tracing fast path stays one relaxed load.  Long-running services
//! ([`ServeHandle`](../velv_serve/struct.ServeHandle.html), `velvd`,
//! `velvc`) arm it on start.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// How many trace records the ring retains (oldest overwritten first).
pub const FLIGHT_CAPACITY: usize = 8192;

static ARMED: AtomicBool = AtomicBool::new(false);
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

struct Ring {
    slots: Vec<Mutex<Option<String>>>,
    /// Total records ever written; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        slots: (0..FLIGHT_CAPACITY).map(|_| Mutex::new(None)).collect(),
        cursor: AtomicU64::new(0),
    })
}

fn dump_dir_slot() -> &'static Mutex<Option<PathBuf>> {
    static SLOT: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Arms the flight recorder: from here on every span/event record is copied
/// into the ring, whether or not a sink is installed.  Idempotent.
pub fn arm() {
    ring();
    ARMED.store(true, Ordering::SeqCst);
    crate::trace::refresh_enabled();
}

/// Disarms the recorder (the ring contents stay readable).  Used by tests;
/// services leave the recorder armed for their lifetime.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    crate::trace::refresh_enabled();
}

/// Whether the recorder is armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Sets the directory [`dump`] writes `FLIGHT-<ts>.jsonl` files into
/// (created if missing); `None` disables dumping (snapshots still work).
pub fn set_dump_dir(dir: Option<&Path>) {
    *dump_dir_slot().lock().expect("flight dump dir lock") = dir.map(Path::to_path_buf);
}

/// Copies one record into the ring.  No-op while disarmed.
pub(crate) fn record(line: &str) {
    if !armed() {
        return;
    }
    let ring = ring();
    let slot = ring.cursor.fetch_add(1, Ordering::Relaxed) as usize % FLIGHT_CAPACITY;
    *ring.slots[slot].lock().expect("flight slot lock") = Some(line.to_owned());
}

/// The ring contents, oldest record first.  Empty while nothing has been
/// recorded (e.g. the recorder was never armed).
pub fn snapshot() -> Vec<String> {
    let ring = ring();
    let cursor = ring.cursor.load(Ordering::Acquire) as usize;
    let mut lines = Vec::with_capacity(cursor.min(FLIGHT_CAPACITY));
    let (start, len) = if cursor > FLIGHT_CAPACITY {
        (cursor % FLIGHT_CAPACITY, FLIGHT_CAPACITY)
    } else {
        (0, cursor)
    };
    for offset in 0..len {
        let slot = (start + offset) % FLIGHT_CAPACITY;
        if let Some(line) = ring.slots[slot].lock().expect("flight slot lock").clone() {
            lines.push(line);
        }
    }
    lines
}

/// Dumps the ring to `FLIGHT-<unix_micros>.jsonl` in the configured dump
/// directory, prefixed with a `flight.dump` event carrying the trigger
/// `reason`.  Returns the written path, or `None` when no dump directory is
/// configured (the snapshot is still available via [`snapshot`]).
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn dump(reason: &str) -> std::io::Result<Option<PathBuf>> {
    let dir = dump_dir_slot()
        .lock()
        .expect("flight dump dir lock")
        .clone();
    let Some(dir) = dir else {
        return Ok(None);
    };
    std::fs::create_dir_all(&dir)?;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("FLIGHT-{ts}-{seq}.jsonl"));
    let mut body = String::from("{\"type\":\"event\",\"name\":\"flight.dump\",\"reason\":\"");
    crate::json_escape_into(&mut body, reason);
    body.push_str("\"}\n");
    for line in snapshot() {
        body.push_str(&line);
        body.push('\n');
    }
    std::fs::write(&path, body)?;
    Ok(Some(path))
}
