//! `velv_obs` — unified observability for the `velv` workspace.
//!
//! Three zero-dependency pieces, designed to cost (almost) nothing when
//! nobody is looking:
//!
//! * **Metrics** ([`metrics`]): a [`Registry`] of atomically updated
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s, registered by
//!   static name plus optional `{key="value"}` labels.  Handles are
//!   `Arc`-backed and lock-free on the hot path; the registry mutex is only
//!   taken at registration and snapshot time.  A [`Snapshot`] can be encoded
//!   as Prometheus text exposition ([`Snapshot::prometheus_text`]), JSON
//!   ([`Snapshot::json`]) or flat `key value` pairs
//!   ([`Snapshot::flat_fields`], the `velvd` wire format).
//! * **Tracing** ([`trace`]): `Instant`-stamped spans and events with
//!   parent/child nesting, buffered per thread and drained to a pluggable
//!   [`TraceSink`] as JSON lines.  With no sink installed the whole tracer
//!   collapses to one relaxed atomic load per call site.
//! * **Trace checking** ([`tracecheck`]): a small flat-JSON parser and
//!   [`check_trace`] validator asserting a trace is well-formed JSONL with
//!   balanced span open/close records — used by `satbench --trace`, CI, and
//!   `velvc trace <file>`.  [`check_traces`] extends the check to several
//!   per-process files, resolving cross-process parentage through
//!   `trace=`/`remote_parent=` span fields.
//! * **Flight recorder** ([`flight`]): a fixed-size lock-light ring of the
//!   most recent trace records, armed by long-running services so a worker
//!   panic or shed storm can be dumped post mortem (`FLIGHT-<ts>.jsonl`)
//!   even when no sink is installed.
//! * **Solve profiler** ([`profile`]): a bounded decimating time-series
//!   recorder ([`SolveRecorder`]) fed by solver heartbeats, a span-folding
//!   phase-time sink ([`ProfileSink`]), and the per-solve [`SolveProfile`]
//!   JSONL artifact combining both.
//! * **Mergeable latency histogram** ([`LogHistogram`]): log-bucketed
//!   micros-to-minutes buckets whose merge is element-wise addition, for
//!   pooling percentile estimates across shards, threads or trace files.
//! * **Memory observability** ([`mem`]): a counting `#[global_allocator]`
//!   wrapper ([`CountingAlloc`]) maintaining live/peak/total heap bytes,
//!   thread-local RAII scope tags ([`MemScope`]) attributing allocation
//!   deltas to a fixed subsystem registry, the [`MemFootprint`] trait for
//!   deep measured byte counts of hot structures, and peak-RSS watermarks.
//!
//! # Metric naming scheme
//!
//! Prometheus conventions: `velv_<layer>_<what>_<unit>`, with monotone
//! counters ending in `_total` and preset/member labels where a family is
//! split (`velv_sat_conflicts_total{preset="chaff"}`).  The process-wide
//! [`global()`] registry carries the solver/translation/proof families; each
//! `velv_serve` service instance owns its own [`Registry`] so concurrent
//! services never mix counters.
//!
//! # Example
//!
//! ```
//! let registry = velv_obs::Registry::new();
//! let solves = registry.counter("demo_solves_total", "Solve calls.");
//! solves.inc();
//! let snapshot = registry.snapshot();
//! assert!(snapshot.prometheus_text().contains("demo_solves_total 1"));
//! velv_obs::validate_prometheus_text(&snapshot.prometheus_text()).unwrap();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flight;
pub mod hist;
pub mod mem;
pub mod metrics;
pub mod profile;
pub mod trace;
pub mod tracecheck;

mod encode;

pub use encode::validate_prometheus_text;
pub use hist::{log_bucket_bounds, LogHistogram};
pub use mem::{CountingAlloc, MemFootprint, MemScope, MemSnapshot};
pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricSample, MetricValue, Registry,
    Snapshot,
};
pub use profile::{
    shared_recorder, PhaseNode, ProfileSink, SharedSolveRecorder, SolveMarker, SolveProfile,
    SolveRecorder, SolveSample,
};
pub use trace::{
    current_span_id, enabled, event, flush, install_sink, span, span_child_of, span_fields,
    uninstall_sink, FieldValue, JsonlFileSink, MemorySink, SpanGuard, TraceSink,
};
pub use tracecheck::{
    check_trace, check_traces, parse_trace_line, MergedTraceSummary, TraceRecord, TraceSummary,
};

/// Escapes a string for embedding in a JSON string literal (no surrounding
/// quotes).  Shared by the exposition encoders and the tracer.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}
