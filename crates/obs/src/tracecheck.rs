//! Trace validation: parse JSONL trace records and assert span open/close
//! balance.  Used by `satbench --trace`, CI, and `velvc trace <file>`.
//!
//! The parser handles exactly the flat JSON objects the tracer emits:
//! string, integer, float and boolean values, no nesting.  Every value is
//! surfaced as a string (numbers and booleans in their source spelling).

use std::collections::BTreeMap;

/// One parsed trace record.
#[derive(Clone, Debug, Default)]
pub struct TraceRecord {
    /// Every key/value pair of the record; numbers and booleans keep their
    /// textual spelling.
    pub fields: BTreeMap<String, String>,
}

impl TraceRecord {
    /// A field value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// The record type (`span_open`, `span_close`, `event`).
    pub fn kind(&self) -> &str {
        self.get("type").unwrap_or("")
    }

    /// A field parsed as `u64`.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(|v| v.parse().ok())
    }
}

/// Parses one flat JSON object line into a [`TraceRecord`].
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_trace_line(line: &str) -> Result<TraceRecord, String> {
    let bytes = line.trim().as_bytes();
    let mut pos = 0usize;

    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let parse_string = |pos: &mut usize| -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos:?}", pos = *pos));
        }
        *pos += 1;
        let mut out = String::new();
        while *pos < bytes.len() {
            match bytes[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    let escape = *bytes
                        .get(*pos)
                        .ok_or_else(|| "dangling escape".to_string())?;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = line
                                .trim()
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                    *pos += 1;
                }
                _ => {
                    // Advance one UTF-8 scalar.
                    let s = &line.trim()[*pos..];
                    let c = s.chars().next().ok_or_else(|| "truncated".to_string())?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
        Err("unterminated string".to_string())
    };

    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("record does not start with `{`".to_string());
    }
    pos += 1;
    let mut record = TraceRecord::default();
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
        skip_ws(&mut pos);
        if pos != bytes.len() {
            return Err("trailing bytes after record".to_string());
        }
        return Ok(record);
    }
    loop {
        skip_ws(&mut pos);
        let key = parse_string(&mut pos)?;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("missing `:` after key `{key}`"));
        }
        pos += 1;
        skip_ws(&mut pos);
        let value = match bytes.get(pos) {
            Some(&b'"') => parse_string(&mut pos)?,
            Some(&b't') if bytes[pos..].starts_with(b"true") => {
                pos += 4;
                "true".to_string()
            }
            Some(&b'f') if bytes[pos..].starts_with(b"false") => {
                pos += 5;
                "false".to_string()
            }
            Some(&b'n') if bytes[pos..].starts_with(b"null") => {
                pos += 4;
                "null".to_string()
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' || *c == b'+' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_digit()
                        || matches!(bytes[pos], b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    pos += 1;
                }
                let text = &line.trim()[start..pos];
                if text.parse::<f64>().is_err() {
                    return Err(format!("bad number `{text}` for key `{key}`"));
                }
                text.to_string()
            }
            _ => {
                return Err(format!(
                    "unsupported value for key `{key}` (flat JSON only)"
                ))
            }
        };
        record.fields.insert(key, value);
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(&b',') => {
                pos += 1;
            }
            Some(&b'}') => {
                pos += 1;
                break;
            }
            _ => return Err("expected `,` or `}`".to_string()),
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err("trailing bytes after record".to_string());
    }
    Ok(record)
}

/// Aggregate outcome of [`check_trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total records parsed.
    pub records: usize,
    /// `span_open` records.
    pub spans_opened: usize,
    /// `span_close` records.
    pub spans_closed: usize,
    /// `event` records.
    pub events: usize,
    /// Spans opened but never closed by the end of the trace.  Zero for a
    /// fully drained single-threaded run; concurrent runs flushed mid-span
    /// legitimately leave a tail.
    pub unclosed: usize,
}

/// Checks a JSONL trace: every line parses as a flat JSON record with a
/// known `type`, every `span_close` matches exactly one earlier `span_open`
/// with the same `id`, and no id closes twice.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn check_trace(text: &str) -> Result<TraceSummary, String> {
    use std::collections::HashSet;
    let mut open: HashSet<u64> = HashSet::new();
    let mut closed: HashSet<u64> = HashSet::new();
    let mut summary = TraceSummary::default();
    for (number, line) in text.lines().enumerate() {
        let number = number + 1;
        if line.trim().is_empty() {
            continue;
        }
        let record =
            parse_trace_line(line).map_err(|e| format!("line {number}: {e} in `{line}`"))?;
        summary.records += 1;
        match record.kind() {
            "span_open" => {
                summary.spans_opened += 1;
                let id = record
                    .get_u64("id")
                    .ok_or_else(|| format!("line {number}: span_open without a numeric id"))?;
                if !open.insert(id) || closed.contains(&id) {
                    return Err(format!("line {number}: span id {id} opened twice"));
                }
            }
            "span_close" => {
                summary.spans_closed += 1;
                let id = record
                    .get_u64("id")
                    .ok_or_else(|| format!("line {number}: span_close without a numeric id"))?;
                if !open.remove(&id) {
                    return Err(format!(
                        "line {number}: span id {id} closed without a matching open"
                    ));
                }
                closed.insert(id);
            }
            "event" => {
                summary.events += 1;
                if record.get("name").is_none() {
                    return Err(format!("line {number}: event without a name"));
                }
            }
            other => {
                return Err(format!("line {number}: unknown record type `{other}`"));
            }
        }
    }
    summary.unclosed = open.len();
    Ok(summary)
}

/// Aggregate outcome of [`check_traces`] over several per-process files.
#[derive(Clone, Debug, Default)]
pub struct MergedTraceSummary {
    /// Number of input files.
    pub files: usize,
    /// Per-file summaries summed field-wise.
    pub totals: TraceSummary,
    /// Distinct 64-bit trace ids seen on `trace=`-tagged spans.
    pub traces: usize,
    /// Spans carrying both `trace` and `remote_parent` — cross-process
    /// parent/child links.
    pub remote_links: usize,
    /// Remote links whose `(trace, remote_parent)` resolves to no
    /// `trace`-tagged span in any input file: the child claims a parent
    /// nobody recorded.
    pub orphaned: usize,
    /// All span durations (`dur_us` of every `span_close`) pooled across
    /// the files — one [`LogHistogram`](crate::LogHistogram) per file,
    /// merged.
    pub durations: crate::LogHistogram,
}

/// Validates several JSONL trace files captured by *different processes* as
/// one distributed trace.
///
/// Each file must pass [`check_trace`] on its own.  Span ids are per-process
/// counters, so cross-file parentage cannot use the `parent` field; instead
/// a process that continues a remote trace tags its spans with `trace=<id>`
/// and `remote_parent=<span>`, and this check resolves every such link
/// against the `trace`-tagged spans of the other files (same-file resolution
/// also counts — ids are unique within a process).  Timestamps are
/// process-local and deliberately not compared.
///
/// Input is `(label, jsonl-text)` pairs; the label names the file in error
/// messages.
///
/// # Errors
///
/// Returns the first per-file validation error, prefixed with the label.
pub fn check_traces(files: &[(&str, &str)]) -> Result<MergedTraceSummary, String> {
    use std::collections::HashSet;
    let mut summary = MergedTraceSummary {
        files: files.len(),
        ..MergedTraceSummary::default()
    };
    // (file index, trace id, span id) of every trace-tagged span_open.
    let mut tagged: HashSet<(usize, u64, u64)> = HashSet::new();
    // (file index, trace id, remote parent span id) of every remote link.
    let mut links: Vec<(usize, u64, u64)> = Vec::new();
    let mut trace_ids: HashSet<u64> = HashSet::new();
    for (index, (label, text)) in files.iter().enumerate() {
        let file = check_trace(text).map_err(|e| format!("{label}: {e}"))?;
        summary.totals.records += file.records;
        summary.totals.spans_opened += file.spans_opened;
        summary.totals.spans_closed += file.spans_closed;
        summary.totals.events += file.events;
        summary.totals.unclosed += file.unclosed;
        let mut durations = crate::LogHistogram::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            // check_trace already proved every line parses.
            let record = parse_trace_line(line).map_err(|e| format!("{label}: {e}"))?;
            match record.kind() {
                "span_open" => {
                    let (Some(id), Some(trace)) = (record.get_u64("id"), record.get_u64("trace"))
                    else {
                        continue;
                    };
                    trace_ids.insert(trace);
                    tagged.insert((index, trace, id));
                    if let Some(remote) = record.get_u64("remote_parent") {
                        summary.remote_links += 1;
                        links.push((index, trace, remote));
                    }
                }
                "span_close" => {
                    if let Some(dur) = record.get_u64("dur_us") {
                        durations.observe(dur);
                    }
                }
                _ => {}
            }
        }
        summary.durations.merge(&durations);
    }
    summary.traces = trace_ids.len();
    for (file, trace, remote) in links {
        let resolved = tagged.contains(&(file, trace, remote))
            || (0..files.len())
                .any(|other| other != file && tagged.contains(&(other, trace, remote)));
        if !resolved {
            summary.orphaned += 1;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_records() {
        let record = parse_trace_line(
            r#"{"type":"span_open","id":3,"parent":0,"name":"a b","ok":true,"x":-1.5}"#,
        )
        .unwrap();
        assert_eq!(record.kind(), "span_open");
        assert_eq!(record.get_u64("id"), Some(3));
        assert_eq!(record.get("name"), Some("a b"));
        assert_eq!(record.get("ok"), Some("true"));
        assert_eq!(record.get("x"), Some("-1.5"));
    }

    #[test]
    fn parses_escapes() {
        let record = parse_trace_line(r#"{"name":"q\"u\\o\nte A"}"#).unwrap();
        assert_eq!(record.get("name"), Some("q\"u\\o\nte A"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_trace_line("not json").is_err());
        assert!(parse_trace_line(r#"{"a":}"#).is_err());
        assert!(parse_trace_line(r#"{"a":{"nested":1}}"#).is_err());
        assert!(parse_trace_line(r#"{"a":1} extra"#).is_err());
    }

    #[test]
    fn balanced_traces_pass() {
        let text = concat!(
            "{\"type\":\"span_open\",\"id\":1,\"parent\":0,\"name\":\"a\"}\n",
            "{\"type\":\"event\",\"name\":\"tick\",\"parent\":1}\n",
            "{\"type\":\"span_open\",\"id\":2,\"parent\":1,\"name\":\"b\"}\n",
            "{\"type\":\"span_close\",\"id\":2,\"name\":\"b\"}\n",
            "{\"type\":\"span_close\",\"id\":1,\"name\":\"a\"}\n",
        );
        let summary = check_trace(text).unwrap();
        assert_eq!(summary.spans_opened, 2);
        assert_eq!(summary.spans_closed, 2);
        assert_eq!(summary.events, 1);
        assert_eq!(summary.unclosed, 0);
    }

    #[test]
    fn merged_cross_process_links_resolve_by_trace_id() {
        // Client process: root span 1 tagged with trace 77.
        let client = concat!(
            "{\"type\":\"span_open\",\"id\":1,\"parent\":0,\"name\":\"velvc.submit\",\"trace\":77}\n",
            "{\"type\":\"span_close\",\"id\":1,\"name\":\"velvc.submit\",\"dur_us\":120}\n",
        );
        // Server process: its own id 1 (ids collide across processes), but
        // the remote_parent resolves via (trace, span) in the client file.
        let server = concat!(
            "{\"type\":\"span_open\",\"id\":1,\"parent\":0,\"name\":\"serve.job\",\"trace\":77,\"remote_parent\":1}\n",
            "{\"type\":\"span_close\",\"id\":1,\"name\":\"serve.job\",\"dur_us\":80}\n",
        );
        let merged = check_traces(&[("client", client), ("server", server)]).unwrap();
        assert_eq!(merged.files, 2);
        assert_eq!(merged.totals.spans_opened, 2);
        assert_eq!(merged.totals.unclosed, 0);
        assert_eq!(merged.traces, 1);
        assert_eq!(merged.remote_links, 1);
        assert_eq!(merged.orphaned, 0);
        assert_eq!(merged.durations.count(), 2);
    }

    #[test]
    fn merged_check_reports_orphaned_remote_parents() {
        let client = concat!(
            "{\"type\":\"span_open\",\"id\":1,\"name\":\"velvc.submit\",\"trace\":77}\n",
            "{\"type\":\"span_close\",\"id\":1,\"name\":\"velvc.submit\"}\n",
        );
        // Wrong trace id: the link cannot resolve anywhere.
        let server = concat!(
            "{\"type\":\"span_open\",\"id\":5,\"name\":\"serve.job\",\"trace\":78,\"remote_parent\":1}\n",
            "{\"type\":\"span_close\",\"id\":5,\"name\":\"serve.job\"}\n",
        );
        let merged = check_traces(&[("client", client), ("server", server)]).unwrap();
        assert_eq!(merged.remote_links, 1);
        assert_eq!(merged.orphaned, 1);
        assert_eq!(merged.traces, 2);

        // A malformed member file fails the whole merge, naming the file.
        let err = check_traces(&[("client", client), ("bad", "not json")]).unwrap_err();
        assert!(err.starts_with("bad:"), "{err}");
    }

    #[test]
    fn unbalanced_traces_are_reported() {
        let unclosed = check_trace("{\"type\":\"span_open\",\"id\":1,\"name\":\"a\"}").unwrap();
        assert_eq!(unclosed.unclosed, 1);
        assert!(check_trace("{\"type\":\"span_close\",\"id\":9,\"name\":\"a\"}").is_err());
        let double = concat!(
            "{\"type\":\"span_open\",\"id\":1,\"name\":\"a\"}\n",
            "{\"type\":\"span_close\",\"id\":1,\"name\":\"a\"}\n",
            "{\"type\":\"span_close\",\"id\":1,\"name\":\"a\"}\n",
        );
        assert!(check_trace(double).is_err());
    }
}
