//! Memory observability: a counting global allocator, per-subsystem scope
//! attribution, and heap watermarks.
//!
//! Three zero-dependency pieces:
//!
//! * **[`CountingAlloc`]** — a `#[global_allocator]` wrapper over
//!   [`std::alloc::System`] maintaining live/peak/total-allocated bytes and
//!   allocation counts with relaxed atomics.  Binaries opt in:
//!
//!   ```ignore
//!   #[global_allocator]
//!   static ALLOC: velv_obs::CountingAlloc = velv_obs::CountingAlloc;
//!   ```
//!
//!   With no installation the counters simply stay zero; every reader treats
//!   an all-zero snapshot as "not instrumented".
//!
//! * **[`MemScope`]** — a thread-local RAII scope tag attributing allocation
//!   deltas to a small fixed registry of subsystems ([`scope_names`]):
//!   `sat.arena`, `sat.learnts`, `serve.cache`, `store.log`, `proof`,
//!   `eufm`, and the catch-all `other`.  Scopes nest; an allocation is
//!   charged to the *innermost* scope active on the allocating thread, and a
//!   free is charged to the scope active at free time — so per-scope live
//!   bytes can transiently go negative for individual scopes while their sum
//!   always equals the global live count exactly.
//!
//! * **[`MemFootprint`]** — a trait for *measured* deep byte counts of hot
//!   structures (clause arenas, cache shards, store indexes), published as
//!   gauges and cross-checked against the allocator's scope attribution.
//!
//! The allocator hot path is two or three relaxed atomic RMWs plus one
//! thread-local read; the thread-local is a const-initialised `Cell` (no
//! destructor, no lazy allocation), so the allocator never recurses into
//! itself and stays safe during TLS teardown.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// The fixed scope registry.  `other` is the catch-all for unattributed
/// allocations and must stay last.
pub const SCOPE_NAMES: [&str; 7] = [
    "sat.arena",
    "sat.learnts",
    "serve.cache",
    "store.log",
    "proof",
    "eufm",
    "other",
];

/// Index of the catch-all scope.
const OTHER: usize = SCOPE_NAMES.len() - 1;

/// The registered scope names, in index order.
pub fn scope_names() -> &'static [&'static str] {
    &SCOPE_NAMES
}

static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

static SCOPE_LIVE: [AtomicI64; SCOPE_NAMES.len()] =
    [const { AtomicI64::new(0) }; SCOPE_NAMES.len()];
static SCOPE_PEAK: [AtomicI64; SCOPE_NAMES.len()] =
    [const { AtomicI64::new(0) }; SCOPE_NAMES.len()];
static SCOPE_TOTAL: [AtomicU64; SCOPE_NAMES.len()] =
    [const { AtomicU64::new(0) }; SCOPE_NAMES.len()];

thread_local! {
    /// The innermost scope index active on this thread.  Const-initialised
    /// `Cell<usize>` — not `Drop`, so no TLS destructor and no allocation on
    /// first touch, which keeps the allocator re-entrancy-free.
    static CURRENT_SCOPE: Cell<usize> = const { Cell::new(OTHER) };
}

#[inline]
fn current_scope() -> usize {
    // `try_with` (not `with`): during thread teardown the slot may already
    // be destroyed; fall back to the catch-all instead of aborting.
    CURRENT_SCOPE.try_with(Cell::get).unwrap_or(OTHER)
}

#[inline]
fn record_alloc(size: usize) {
    let delta = size as i64;
    let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK.fetch_max(live, Ordering::Relaxed);
    TOTAL.fetch_add(size as u64, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let scope = current_scope();
    let scope_live = SCOPE_LIVE[scope].fetch_add(delta, Ordering::Relaxed) + delta;
    SCOPE_PEAK[scope].fetch_max(scope_live, Ordering::Relaxed);
    SCOPE_TOTAL[scope].fetch_add(size as u64, Ordering::Relaxed);
}

#[inline]
fn record_dealloc(size: usize) {
    let delta = size as i64;
    LIVE.fetch_sub(delta, Ordering::Relaxed);
    FREES.fetch_add(1, Ordering::Relaxed);
    SCOPE_LIVE[current_scope()].fetch_sub(delta, Ordering::Relaxed);
}

/// A counting allocator: forwards to [`System`] and maintains the
/// module-level byte/count statics.  Install per binary with
/// `#[global_allocator]`; see the [module docs](self).
pub struct CountingAlloc;

// SAFETY: every method forwards to `System` with the caller's layout
// unchanged; the bookkeeping only touches lock-free statics and a
// const-initialised thread-local, so it never allocates or unwinds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        new_ptr
    }
}

/// An RAII scope tag: allocations on this thread are attributed to `name`
/// until the guard drops (drop restores the previous scope, so scopes nest
/// and child allocations land in the innermost scope).
///
/// Unknown names fall back to the `other` catch-all rather than failing —
/// the scope registry is fixed (see [`scope_names`]).
#[must_use = "attribution lasts only while the scope guard is alive"]
pub struct MemScope {
    previous: usize,
    /// Pins the guard to its thread: restoring another thread's scope slot
    /// would mis-attribute both threads.
    _not_send: PhantomData<*const ()>,
}

impl MemScope {
    /// Enters scope `name` on the current thread.
    pub fn enter(name: &str) -> MemScope {
        let index = SCOPE_NAMES.iter().position(|&s| s == name).unwrap_or(OTHER);
        let previous = CURRENT_SCOPE
            .try_with(|slot| slot.replace(index))
            .unwrap_or(OTHER);
        MemScope {
            previous,
            _not_send: PhantomData,
        }
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        let _ = CURRENT_SCOPE.try_with(|slot| slot.set(self.previous));
    }
}

/// Deep measured byte count of a structure: the bytes it owns on the heap
/// (capacities, not lengths) plus its own inline size where that is useful
/// to the caller.  Implementations are *estimates from the structure's own
/// bookkeeping* — cheap enough for heartbeats, cross-checked against the
/// allocator's scope attribution rather than replacing it.
pub trait MemFootprint {
    /// Bytes attributable to this value, deeply.
    fn measured_bytes(&self) -> usize;
}

/// One scope's readings in a [`MemSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemScopeSnapshot {
    /// The scope name (one of [`scope_names`]).
    pub name: &'static str,
    /// Live bytes attributed to the scope.  May be negative when frees were
    /// attributed here for allocations made under another scope; the sum
    /// across scopes always equals the global live count.
    pub live_bytes: i64,
    /// High-water mark of the scope's live bytes (since process start or the
    /// last [`reset_peaks`]).
    pub peak_bytes: i64,
    /// Total bytes ever allocated under the scope.
    pub total_bytes: u64,
}

/// A point-in-time copy of the allocator statics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Live heap bytes (allocated minus freed).
    pub live_bytes: i64,
    /// High-water mark of live bytes (clamped to at least the current live
    /// count, so `peak >= live` holds even against racing updates).
    pub peak_bytes: i64,
    /// Total bytes ever allocated.
    pub total_bytes: u64,
    /// Allocation calls.
    pub allocations: u64,
    /// Deallocation calls.
    pub frees: u64,
    /// Peak resident set size of the process in bytes (`VmHWM`), 0 where
    /// unavailable.
    pub peak_rss_bytes: u64,
    /// Per-scope readings, in [`scope_names`] order.
    pub scopes: Vec<MemScopeSnapshot>,
}

/// Live heap bytes right now (0 when the counting allocator is not
/// installed).
pub fn live_bytes() -> i64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes, clamped to at least the current live
/// count.
pub fn peak_bytes() -> i64 {
    PEAK.load(Ordering::Relaxed).max(live_bytes())
}

/// Total bytes ever allocated.
pub fn total_bytes() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Live bytes attributed to scope `name` (0 for unknown names).
pub fn scope_live_bytes(name: &str) -> i64 {
    match SCOPE_NAMES.iter().position(|&s| s == name) {
        Some(index) => SCOPE_LIVE[index].load(Ordering::Relaxed),
        None => 0,
    }
}

/// Total bytes ever allocated under scope `name` (0 for unknown names).
pub fn scope_total_bytes(name: &str) -> u64 {
    match SCOPE_NAMES.iter().position(|&s| s == name) {
        Some(index) => SCOPE_TOTAL[index].load(Ordering::Relaxed),
        None => 0,
    }
}

/// Resets the global and per-scope high-water marks to the current live
/// counts, so a caller can measure the peak of one region of interest (the
/// bench harness resets before every measured solve).  Racing allocations
/// may re-raise a peak immediately; that is the desired semantics.
pub fn reset_peaks() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    for (peak, live) in SCOPE_PEAK.iter().zip(SCOPE_LIVE.iter()) {
        peak.store(live.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Peak resident set size of the process in bytes, read from
/// `/proc/self/status` (`VmHWM`); 0 on platforms without procfs or when the
/// read fails.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// A point-in-time copy of every allocator statistic, including the
/// per-scope attribution and the process peak RSS.
pub fn snapshot() -> MemSnapshot {
    let live = LIVE.load(Ordering::Relaxed);
    let scopes = SCOPE_NAMES
        .iter()
        .enumerate()
        .map(|(index, &name)| {
            let scope_live = SCOPE_LIVE[index].load(Ordering::Relaxed);
            MemScopeSnapshot {
                name,
                live_bytes: scope_live,
                peak_bytes: SCOPE_PEAK[index].load(Ordering::Relaxed).max(scope_live),
                total_bytes: SCOPE_TOTAL[index].load(Ordering::Relaxed),
            }
        })
        .collect();
    MemSnapshot {
        live_bytes: live,
        peak_bytes: PEAK.load(Ordering::Relaxed).max(live),
        total_bytes: TOTAL.load(Ordering::Relaxed),
        allocations: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        peak_rss_bytes: peak_rss_bytes(),
        scopes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator itself is exercised end to end in `tests/mem.rs`, which
    // installs `CountingAlloc` as its binary's global allocator.  Here only
    // the allocator-independent pieces are covered.

    #[test]
    fn unknown_scopes_fall_back_to_other() {
        let scope = MemScope::enter("no.such.scope");
        assert_eq!(current_scope(), OTHER);
        drop(scope);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = MemScope::enter("sat.arena");
        assert_eq!(current_scope(), 0);
        {
            let _inner = MemScope::enter("serve.cache");
            assert_eq!(current_scope(), 2);
        }
        assert_eq!(current_scope(), 0);
        drop(outer);
        assert_eq!(current_scope(), OTHER);
    }

    #[test]
    fn snapshot_keeps_peak_at_least_live() {
        let snap = snapshot();
        assert!(snap.peak_bytes >= snap.live_bytes);
        for scope in &snap.scopes {
            assert!(scope.peak_bytes >= scope.live_bytes, "{}", scope.name);
        }
        assert_eq!(snap.scopes.len(), SCOPE_NAMES.len());
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        // On Linux procfs is always there; elsewhere the call returns 0.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
