//! A mergeable log-bucketed latency histogram, tuned for durations from one
//! microsecond to minutes.
//!
//! [`LogHistogram`] is a plain value (no atomics, no registry): record into
//! one per shard/file/thread, then [`LogHistogram::merge`] them — merging is
//! element-wise bucket addition, so it is associative and commutative, and a
//! quantile of the merged histogram equals the quantile over the pooled
//! samples (within bucket resolution).  The bucket bounds are the 1–2–5
//! series per decade ([`log_bucket_bounds`]), giving a worst-case relative
//! quantile error of ~2.5× at 27 buckets over nine decades — the resolution
//! the serve SLO accounting and the multi-file `velvc trace` summary need.
//!
//! For hot-path recording under concurrency, prefer a registry
//! [`Histogram`](crate::Histogram) with these bounds; this type is for
//! offline aggregation where merging is the point.

use crate::metrics::HistogramSnapshot;

/// Inclusive upper bucket bounds in microseconds: the 1–2–5 series from
/// 1 µs to 600 s (ten minutes).  An implicit `+Inf` bucket follows.
pub fn log_bucket_bounds() -> &'static [u64] {
    const BOUNDS: &[u64] = &[
        1,
        2,
        5,
        10,
        20,
        50,
        100,
        200,
        500,
        1_000,
        2_000,
        5_000,
        10_000,
        20_000,
        50_000,
        100_000,
        200_000,
        500_000,
        1_000_000,
        2_000_000,
        5_000_000,
        10_000_000,
        20_000_000,
        50_000_000,
        100_000_000,
        200_000_000,
        600_000_000,
    ];
    BOUNDS
}

/// A mergeable histogram over `u64` microsecond durations with the fixed
/// [`log_bucket_bounds`] bucketing.  See the [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    /// Per-bucket counts; one more entry than [`log_bucket_bounds`], the
    /// last being the `+Inf` overflow bucket.
    counts: Vec<u64>,
    sum: u128,
    count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; log_bucket_bounds().len() + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Records one observation (microseconds).
    pub fn observe(&mut self, micros: u64) {
        let index = log_bucket_bounds().partition_point(|&bound| bound < micros);
        self.counts[index] += 1;
        self.sum += u128::from(micros);
        self.count += 1;
    }

    /// Adds every observation of `other` into `self` (element-wise bucket
    /// addition — associative, commutative, with [`LogHistogram::new`] as
    /// identity).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (microseconds).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The mean observation, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in microseconds; see
    /// [`HistogramSnapshot::quantile`] for the interpolation contract.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// The state as a registry-style [`HistogramSnapshot`] (sum saturates at
    /// `u64::MAX`).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: log_bucket_bounds().to_vec(),
            counts: self.counts.clone(),
            sum: u64::try_from(self.sum).unwrap_or(u64::MAX),
            count: self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_span_micros_to_minutes() {
        let bounds = log_bucket_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds[0], 1);
        assert_eq!(*bounds.last().unwrap(), 600_000_000);
    }

    #[test]
    fn merge_pools_samples() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [3u64, 40, 900] {
            a.observe(v);
        }
        for v in [7u64, 7_000_000] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 3 + 40 + 900 + 7 + 7_000_000);
        let mut pooled = LogHistogram::new();
        for v in [3u64, 40, 900, 7, 7_000_000] {
            pooled.observe(v);
        }
        assert_eq!(a, pooled);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.observe(15); // (10, 20] bucket
        }
        h.observe(400_000_000); // (200e6, 600e6] bucket
        let p50 = h.quantile(0.5);
        assert!((10.0..=20.0).contains(&p50), "{p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 <= 20.0, "{p99}");
        let p100 = h.quantile(1.0);
        assert!(p100 > 200_000_000.0, "{p100}");
    }
}
