//! Integration tests for `velv_obs`: histogram bucket boundaries, a seeded
//! multi-thread counter hammer, tracer span nesting, and the
//! disabled-subscriber overhead guard.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use velv_obs::{check_trace, MemorySink, Registry};

/// Tests that install a trace sink serialize on this lock: the sink slot and
/// the `enabled` flag are process-global.
fn tracer_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper_edges() {
    let registry = Registry::new();
    let h = registry.histogram("t_micros", "T.", &[10, 100, 1000]);
    // Exactly on a bound lands in that bound's bucket; one past it spills
    // into the next.
    for v in [0, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
        h.observe(v);
    }
    let snapshot = h.snapshot();
    assert_eq!(snapshot.bounds, vec![10, 100, 1000]);
    assert_eq!(snapshot.counts, vec![2, 2, 2, 2]);
    assert_eq!(snapshot.count, 8);
    // The Prometheus encoding is cumulative.
    let text = registry.snapshot().prometheus_text();
    assert!(text.contains("t_micros_bucket{le=\"10\"} 2"), "{text}");
    assert!(text.contains("t_micros_bucket{le=\"100\"} 4"), "{text}");
    assert!(text.contains("t_micros_bucket{le=\"1000\"} 6"), "{text}");
    assert!(text.contains("t_micros_bucket{le=\"+Inf\"} 8"), "{text}");
    velv_obs::validate_prometheus_text(&text).unwrap();
}

#[test]
fn concurrent_counter_hammer_sums_exactly() {
    // Seeded: each of 8 threads adds a deterministic pseudo-random sequence;
    // the counter must end at exactly the precomputed total.
    let registry = Registry::new();
    let counter = registry.counter("hammer_total", "Hammered.");
    let threads = 8;
    let iterations = 20_000u64;
    let mut expected = 0u64;
    for t in 0..threads {
        let mut state = 0x9e3779b97f4a7c15u64 ^ t;
        for _ in 0..iterations {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            expected += state % 7;
        }
    }
    std::thread::scope(|scope| {
        for t in 0..threads {
            let counter = counter.clone();
            scope.spawn(move || {
                let mut state = 0x9e3779b97f4a7c15u64 ^ t;
                for _ in 0..iterations {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    counter.add(state % 7);
                }
            });
        }
    });
    assert_eq!(counter.get(), expected);
    assert_eq!(registry.snapshot().counter("hammer_total"), Some(expected));
}

#[test]
fn concurrent_histogram_observations_are_not_lost() {
    let h = velv_obs::Histogram::detached(&[8, 64]);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..10_000u64 {
                    h.observe((i + t) % 100);
                }
            });
        }
    });
    let snapshot = h.snapshot();
    assert_eq!(snapshot.count, 40_000);
    assert_eq!(snapshot.counts.iter().sum::<u64>(), 40_000);
}

#[test]
fn spans_nest_and_balance() {
    let _guard = tracer_lock().lock().unwrap();
    let sink = Arc::new(MemorySink::new());
    velv_obs::install_sink(sink.clone());
    {
        let outer = velv_obs::span("obs_test.outer");
        assert_ne!(outer.id(), 0);
        assert_eq!(velv_obs::current_span_id(), outer.id());
        {
            let inner = velv_obs::span_fields(
                "obs_test.inner",
                &[("round", 3u64.into()), ("label", "x".into())],
            );
            assert_eq!(velv_obs::current_span_id(), inner.id());
            velv_obs::event("obs_test.tick", &[("n", 1u64.into())]);
        }
        assert_eq!(velv_obs::current_span_id(), outer.id());
    }
    velv_obs::uninstall_sink();

    let text = sink.contents();
    let summary = check_trace(&text).expect("well-formed trace");
    assert!(summary.spans_opened >= 2);
    assert_eq!(summary.spans_opened, summary.spans_closed);
    assert_eq!(summary.unclosed, 0);

    // Find our spans and verify the parent chain (other tests may have
    // emitted records concurrently; filter by name).
    let records: Vec<velv_obs::TraceRecord> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| velv_obs::parse_trace_line(l).unwrap())
        .collect();
    let outer_open = records
        .iter()
        .find(|r| r.kind() == "span_open" && r.get("name") == Some("obs_test.outer"))
        .expect("outer open record");
    let inner_open = records
        .iter()
        .find(|r| r.kind() == "span_open" && r.get("name") == Some("obs_test.inner"))
        .expect("inner open record");
    assert_eq!(inner_open.get_u64("parent"), outer_open.get_u64("id"));
    assert_eq!(inner_open.get("round"), Some("3"));
    assert_eq!(inner_open.get("label"), Some("x"));
    let tick = records
        .iter()
        .find(|r| r.kind() == "event" && r.get("name") == Some("obs_test.tick"))
        .expect("event record");
    assert_eq!(tick.get_u64("parent"), inner_open.get_u64("id"));
}

#[test]
fn explicit_parent_spans_cross_threads() {
    let _guard = tracer_lock().lock().unwrap();
    let sink = Arc::new(MemorySink::new());
    velv_obs::install_sink(sink.clone());
    let root = velv_obs::span("obs_test.cross_root");
    let parent = velv_obs::current_span_id();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let _child = velv_obs::span_child_of("obs_test.cross_child", parent, &[]);
        });
    });
    drop(root);
    velv_obs::uninstall_sink();
    let text = sink.contents();
    check_trace(&text).expect("well-formed trace");
    let records: Vec<velv_obs::TraceRecord> = text
        .lines()
        .map(|l| velv_obs::parse_trace_line(l).unwrap())
        .collect();
    let root_open = records
        .iter()
        .find(|r| r.kind() == "span_open" && r.get("name") == Some("obs_test.cross_root"))
        .unwrap();
    let child_open = records
        .iter()
        .find(|r| r.kind() == "span_open" && r.get("name") == Some("obs_test.cross_child"))
        .unwrap();
    assert_eq!(child_open.get_u64("parent"), root_open.get_u64("id"));
    assert_ne!(child_open.get("thread"), root_open.get("thread"));
}

#[test]
fn disabled_subscriber_overhead_stays_branch_cheap() {
    // No sink installed: a million span+counter+event rounds must stay far
    // under a second (each round is one atomic load per tracer call plus one
    // counter fetch_add).  The bound is generous to keep CI unflaky; the
    // point is catching an accidental allocation or lock on the disabled
    // path, which would blow past it by an order of magnitude.
    let _guard = tracer_lock().lock().unwrap();
    assert!(!velv_obs::enabled(), "no sink may be installed here");
    let counter = velv_obs::Counter::detached();
    let start = Instant::now();
    for i in 0..1_000_000u64 {
        let _span = velv_obs::span("obs_test.disabled");
        velv_obs::event("obs_test.disabled_event", &[]);
        counter.add(i & 1);
    }
    let elapsed = start.elapsed();
    assert_eq!(counter.get(), 500_000);
    assert!(
        elapsed < Duration::from_secs(1),
        "disabled-path overhead too high: {elapsed:?} for 1M rounds"
    );
}
