//! Flight-recorder integration: arming the ring turns record production on
//! without a sink, the ring wraps at capacity, and dumps are well-formed
//! JSONL.  Lives in its own test binary because arming is process-global —
//! the disabled-overhead regression test must never share a process with an
//! armed recorder.

use std::path::PathBuf;

fn unique_tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("velv_obs_flight_{tag}_{}", std::process::id()))
}

#[test]
fn armed_ring_captures_spans_without_a_sink_and_dumps_jsonl() {
    assert!(
        !velv_obs::enabled(),
        "nothing armed or installed at process start"
    );
    velv_obs::flight::arm();
    assert!(velv_obs::flight::armed());
    assert!(
        velv_obs::enabled(),
        "arming the recorder turns record production on"
    );

    // Records land in the ring even though no sink is installed.
    {
        let _span = velv_obs::span("flight_test.work");
        velv_obs::event("flight_test.tick", &[("n", 1u64.into())]);
    }
    let snapshot = velv_obs::flight::snapshot();
    let joined = snapshot.join("\n");
    assert!(joined.contains("\"flight_test.work\""), "{joined}");
    assert!(joined.contains("\"flight_test.tick\""), "{joined}");
    for line in &snapshot {
        velv_obs::parse_trace_line(line).expect("ring records are valid flat JSON");
    }

    // With no dump directory configured, dump is a clean no-op.
    assert_eq!(velv_obs::flight::dump("no-dir").unwrap(), None);

    // Overflow the ring: only the newest FLIGHT_CAPACITY records survive,
    // oldest first.
    for index in 0..velv_obs::flight::FLIGHT_CAPACITY + 100 {
        velv_obs::event("flight_test.flood", &[("index", index.into())]);
    }
    let wrapped = velv_obs::flight::snapshot();
    assert_eq!(wrapped.len(), velv_obs::flight::FLIGHT_CAPACITY);
    assert!(
        !wrapped
            .iter()
            .any(|l| l.contains("\"index\":0,") || l.ends_with("\"index\":0}")),
        "the oldest flood records were overwritten"
    );

    // A dump names its trigger and replays the ring as parseable JSONL.
    let dir = unique_tmp_dir("dump");
    velv_obs::flight::set_dump_dir(Some(&dir));
    let path = velv_obs::flight::dump("unit-test")
        .expect("dump writes")
        .expect("dump directory is configured");
    assert!(path
        .file_name()
        .unwrap()
        .to_str()
        .unwrap()
        .starts_with("FLIGHT-"));
    let contents = std::fs::read_to_string(&path).unwrap();
    let mut lines = contents.lines();
    let header = velv_obs::parse_trace_line(lines.next().unwrap()).unwrap();
    assert_eq!(header.get("name"), Some("flight.dump"));
    assert_eq!(header.get("reason"), Some("unit-test"));
    for line in lines {
        velv_obs::parse_trace_line(line).expect("dump lines are valid flat JSON");
    }
    assert!(
        contents.contains("flight_test.flood"),
        "ring contents dumped"
    );

    // Disarming turns production back off (no sink is installed).
    velv_obs::flight::set_dump_dir(None);
    velv_obs::flight::disarm();
    assert!(!velv_obs::enabled());
    let _ = std::fs::remove_dir_all(&dir);
}
