//! Property tests for quantile estimation and histogram merging: estimated
//! p50/p95/p99 must bracket the true sample quantiles within the resolution
//! of the containing bucket, and merging must be associative, commutative,
//! and equivalent to pooling the samples.

/// SplitMix64 — the workspace's seeded generator (`velv_obs` cannot depend
/// on `velv_sat`, so the mixer is restated here; equal seeds, equal streams).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A sample spread over the full micros-to-minutes range: an exponent
    /// picks the decade, the mantissa the position inside it.
    fn latency(&mut self) -> u64 {
        let decade = self.next() % 9; // 1 us .. ~1000 s
        let base = 10u64.pow(decade as u32);
        base + self.next() % (base * 9)
    }
}

/// The true `q`-quantile of the samples: the smallest value with at least
/// `ceil(q * n)` samples at or below it.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The `(lower, upper]` bucket of `bounds` containing `v` (the overflow
/// bucket is capped at the last finite bound, matching the estimator's
/// clamping contract).
fn bucket_of(bounds: &[u64], v: u64) -> (f64, f64) {
    let index = bounds.partition_point(|&bound| bound < v);
    if index >= bounds.len() {
        let last = bounds[bounds.len() - 1] as f64;
        return (last, last);
    }
    let lower = if index == 0 {
        0.0
    } else {
        bounds[index - 1] as f64
    };
    (lower, bounds[index] as f64)
}

#[test]
fn estimated_percentiles_bracket_true_quantiles() {
    let bounds = velv_obs::log_bucket_bounds();
    for seed in 0..20u64 {
        let mut rng = Rng(0xF422_0008 ^ seed);
        let n = 100 + (rng.next() % 4000) as usize;
        let mut samples: Vec<u64> = (0..n).map(|_| rng.latency()).collect();

        let registry_hist = velv_obs::Histogram::detached(bounds);
        let mut log_hist = velv_obs::LogHistogram::new();
        for &v in &samples {
            registry_hist.observe(v);
            log_hist.observe(v);
        }
        samples.sort_unstable();

        for q in [0.5, 0.95, 0.99] {
            let truth = true_quantile(&samples, q);
            let (lower, upper) = bucket_of(bounds, truth);
            for (which, estimate) in [
                ("registry", registry_hist.snapshot().quantile(q)),
                ("log", log_hist.quantile(q)),
            ] {
                assert!(
                    (lower..=upper).contains(&estimate),
                    "seed {seed} {which} p{q}: estimate {estimate} outside \
                     ({lower}, {upper}] bracketing true quantile {truth} of {n} samples"
                );
            }
        }
    }
}

#[test]
fn merge_is_associative_commutative_and_pools_samples() {
    for seed in 0..10u64 {
        let mut rng = Rng(0x5EED_0088 ^ seed);
        let parts: Vec<Vec<u64>> = (0..3)
            .map(|_| {
                let n = 1 + (rng.next() % 500) as usize;
                (0..n).map(|_| rng.latency()).collect()
            })
            .collect();
        let hist = |samples: &[u64]| {
            let mut h = velv_obs::LogHistogram::new();
            for &v in samples {
                h.observe(v);
            }
            h
        };
        let (a, b, c) = (hist(&parts[0]), hist(&parts[1]), hist(&parts[2]));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // c ⊕ b ⊕ a
        let mut reversed = c.clone();
        reversed.merge(&b);
        reversed.merge(&a);
        // Pooled samples observed into one histogram.
        let pooled = hist(&parts.concat());

        assert_eq!(left, right, "seed {seed}: merge is associative");
        assert_eq!(left, reversed, "seed {seed}: merge is commutative");
        assert_eq!(left, pooled, "seed {seed}: merge equals pooling");

        // Identity element.
        let mut with_empty = pooled.clone();
        with_empty.merge(&velv_obs::LogHistogram::new());
        assert_eq!(with_empty, pooled, "seed {seed}: empty merge is identity");
    }
}
