//! Allocator accounting under the real global allocator: this test binary
//! installs [`velv_obs::CountingAlloc`], so every allocation in the process
//! (including the test harness's own) flows through the counters.  The
//! assertions therefore lean on *scope-local* figures for exactness — other
//! test threads never enter these scopes — and on invariants (`peak >=
//! live`) for the global figures.

use velv_obs::mem;

#[global_allocator]
static ALLOC: velv_obs::CountingAlloc = velv_obs::CountingAlloc;

/// Multi-thread hammer: live bytes attributed to a scope return exactly to
/// baseline once every allocation made under it is freed (no leak ratchet),
/// and the global peak never drops below live.
#[test]
fn hammer_returns_to_baseline() {
    let baseline = mem::scope_live_bytes("proof");
    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let _scope = mem::MemScope::enter("proof");
                for round in 0..200 {
                    let mut held: Vec<Vec<u8>> = Vec::new();
                    for size in [64usize, 1024, 16 * 1024] {
                        held.push(vec![t; size + round]);
                    }
                    let snap = mem::snapshot();
                    assert!(
                        snap.peak_bytes >= snap.live_bytes,
                        "peak {} fell below live {}",
                        snap.peak_bytes,
                        snap.live_bytes
                    );
                    drop(held);
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }
    assert_eq!(
        mem::scope_live_bytes("proof"),
        baseline,
        "hammer leaked bytes into the proof scope"
    );
    assert!(mem::scope_total_bytes("proof") > 0);
    assert!(mem::total_bytes() > 0);
    assert!(
        mem::live_bytes() > 0,
        "the test harness itself holds memory"
    );
}

/// Scope nesting: a child allocation is attributed to the innermost scope,
/// not the outer one; after the child scope drops, attribution returns to
/// the outer scope.
#[test]
fn nesting_attributes_to_innermost_scope() {
    const OUTER: usize = 10_000;
    const INNER: usize = 70_000;

    let arena_before = mem::scope_total_bytes("sat.arena");
    let cache_before = mem::scope_total_bytes("serve.cache");

    let scope = mem::MemScope::enter("sat.arena");
    let outer_block = vec![1u8; OUTER];
    let inner_block = {
        let _inner = mem::MemScope::enter("serve.cache");
        vec![2u8; INNER]
    };
    let outer_block_2 = vec![3u8; OUTER];
    drop(scope);

    let arena_grew = mem::scope_total_bytes("sat.arena") - arena_before;
    let cache_grew = mem::scope_total_bytes("serve.cache") - cache_before;
    // The outer scope saw both outer blocks but not the inner one; the inner
    // scope saw exactly the inner block.  (`>=`: Vec may round capacities.)
    assert!(arena_grew >= 2 * OUTER as u64, "outer got {arena_grew}");
    assert!(
        arena_grew < INNER as u64,
        "inner bytes leaked into outer scope"
    );
    assert!(cache_grew >= INNER as u64, "inner got {cache_grew}");
    drop(outer_block);
    drop(inner_block);
    drop(outer_block_2);
}

/// Watermarks: after a reset, peak tracks the high-water mark of live bytes
/// and never reads below it; the snapshot clamps racing readings.
#[test]
fn peak_tracks_high_water() {
    mem::reset_peaks();
    let live_before = mem::live_bytes();
    let block = vec![7u8; 1 << 20];
    assert!(mem::peak_bytes() >= live_before + (1 << 20));
    assert!(mem::peak_bytes() >= mem::live_bytes());
    drop(block);
    // Freeing lowers live but not the recorded peak.
    assert!(mem::peak_bytes() >= live_before + (1 << 20));
    let snap = mem::snapshot();
    assert!(snap.peak_bytes >= snap.live_bytes);
    assert!(snap.allocations > snap.frees, "live allocations exist");
}

/// The per-scope live counts sum exactly to the global live count: every
/// allocation and free lands in exactly one scope bucket.
#[test]
fn scope_live_sums_to_global_live() {
    // Hold some scoped memory so the sum is exercised with non-trivial
    // scope buckets, then compare sums across a few snapshots.
    let _scope = mem::MemScope::enter("eufm");
    let _held = vec![5u8; 256 * 1024];
    for _ in 0..50 {
        let snap = mem::snapshot();
        let sum: i64 = snap.scopes.iter().map(|s| s.live_bytes).sum();
        // Racing threads may move the global count between the per-scope
        // loads and the global load; tolerate a small skew but require the
        // figures to agree to well under a percent of live.
        let skew = (sum - snap.live_bytes).abs();
        assert!(
            skew <= snap.live_bytes / 128 + 4096,
            "scope sum {sum} vs live {} (skew {skew})",
            snap.live_bytes
        );
    }
}
