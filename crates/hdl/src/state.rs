//! Symbolic machine states and state-element declarations.

use std::collections::BTreeMap;
use velv_eufm::{Context, FormulaId, TermId};

/// What kind of value a state element holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StateKind {
    /// A single word-level value (PC, a pipeline-latch field, ...).
    Term,
    /// A memory array (register file, data memory, ALAT, ...).
    Memory,
    /// A control bit (valid bit, exception flag, ...).
    Flag,
}

/// Declaration of one state element of a processor.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StateElement {
    /// Unique name of the element (e.g. `"pc"`, `"reg_file"`, `"id_ex.valid"`).
    pub name: String,
    /// Kind of value held by the element.
    pub kind: StateKind,
    /// Whether the element is architectural (visible to the ISA) or
    /// micro-architectural (pipeline latch contents).
    pub architectural: bool,
}

impl StateElement {
    /// Declares an architectural term-valued element.
    pub fn arch_term(name: &str) -> Self {
        StateElement {
            name: name.to_owned(),
            kind: StateKind::Term,
            architectural: true,
        }
    }

    /// Declares an architectural memory element.
    pub fn arch_memory(name: &str) -> Self {
        StateElement {
            name: name.to_owned(),
            kind: StateKind::Memory,
            architectural: true,
        }
    }

    /// Declares an architectural flag element.
    pub fn arch_flag(name: &str) -> Self {
        StateElement {
            name: name.to_owned(),
            kind: StateKind::Flag,
            architectural: true,
        }
    }

    /// Declares a micro-architectural (pipeline) term-valued element.
    pub fn pipe_term(name: &str) -> Self {
        StateElement {
            name: name.to_owned(),
            kind: StateKind::Term,
            architectural: false,
        }
    }

    /// Declares a micro-architectural flag element (e.g. a valid bit).
    pub fn pipe_flag(name: &str) -> Self {
        StateElement {
            name: name.to_owned(),
            kind: StateKind::Flag,
            architectural: false,
        }
    }
}

/// A symbolic value: either a term or a formula.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// A word-level (term) value.
    Term(TermId),
    /// A control (formula) value.
    Formula(FormulaId),
}

impl Value {
    /// Extracts the term, panicking on a formula value.
    ///
    /// # Panics
    ///
    /// Panics if the value is a formula.
    pub fn term(self) -> TermId {
        match self {
            Value::Term(t) => t,
            Value::Formula(_) => panic!("expected a term-valued state element"),
        }
    }

    /// Extracts the formula, panicking on a term value.
    ///
    /// # Panics
    ///
    /// Panics if the value is a term.
    pub fn formula(self) -> FormulaId {
        match self {
            Value::Formula(f) => f,
            Value::Term(_) => panic!("expected a formula-valued state element"),
        }
    }
}

/// A complete symbolic state: a value for every state element of a design.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymbolicState {
    values: BTreeMap<String, Value>,
}

impl SymbolicState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the fully symbolic initial state for `elements`: every term and
    /// memory element becomes a fresh term variable, every flag becomes a
    /// fresh propositional variable.  The prefix keeps implementation and
    /// specification initial states distinct when needed.
    pub fn initial(ctx: &mut Context, elements: &[StateElement], prefix: &str) -> Self {
        let mut state = SymbolicState::new();
        for element in elements {
            let var_name = format!("{prefix}{}", element.name);
            let value = match element.kind {
                StateKind::Term | StateKind::Memory => Value::Term(ctx.term_var(&var_name)),
                StateKind::Flag => Value::Formula(ctx.prop_var(&var_name)),
            };
            state.values.insert(element.name.clone(), value);
        }
        state
    }

    /// Sets a term-valued element.
    pub fn set_term(&mut self, name: &str, value: TermId) -> &mut Self {
        self.values.insert(name.to_owned(), Value::Term(value));
        self
    }

    /// Sets a formula-valued element.
    pub fn set_formula(&mut self, name: &str, value: FormulaId) -> &mut Self {
        self.values.insert(name.to_owned(), Value::Formula(value));
        self
    }

    /// Reads a term-valued element.
    ///
    /// # Panics
    ///
    /// Panics if the element is missing or formula-valued.
    pub fn term(&self, name: &str) -> TermId {
        self.value(name).term()
    }

    /// Reads a formula-valued element.
    ///
    /// # Panics
    ///
    /// Panics if the element is missing or term-valued.
    pub fn formula(&self, name: &str) -> FormulaId {
        self.value(name).formula()
    }

    /// Reads any element.
    ///
    /// # Panics
    ///
    /// Panics if the element is missing.
    pub fn value(&self, name: &str) -> Value {
        *self
            .values
            .get(name)
            .unwrap_or_else(|| panic!("state element `{name}` is not present in this state"))
    }

    /// Looks up an element without panicking.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.values.get(name).copied()
    }

    /// Whether the state contains an element.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Value)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of elements in the state.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state has no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Restricts the state to the given elements (e.g. projecting a flushed
    /// implementation state onto the architectural state).
    pub fn project(&self, elements: &[StateElement]) -> SymbolicState {
        let mut projected = SymbolicState::new();
        for element in elements {
            if let Some(value) = self.get(&element.name) {
                projected.values.insert(element.name.clone(), value);
            }
        }
        projected
    }

    /// The formula stating that `self` and `other` agree on every element in
    /// `elements` (term elements compared with equations, flags with `iff`).
    ///
    /// # Panics
    ///
    /// Panics if an element is missing from either state.
    pub fn equal_on(
        &self,
        ctx: &mut Context,
        other: &SymbolicState,
        elements: &[StateElement],
    ) -> FormulaId {
        let mut acc = ctx.true_id();
        for element in elements {
            let eq = self.element_equal(ctx, other, element);
            acc = ctx.and(acc, eq);
        }
        acc
    }

    /// The formula stating that `self` and `other` agree on one element.
    ///
    /// # Panics
    ///
    /// Panics if the element is missing from either state.
    pub fn element_equal(
        &self,
        ctx: &mut Context,
        other: &SymbolicState,
        element: &StateElement,
    ) -> FormulaId {
        match element.kind {
            StateKind::Term | StateKind::Memory => {
                let a = self.term(&element.name);
                let b = other.term(&element.name);
                ctx.eq(a, b)
            }
            StateKind::Flag => {
                let a = self.formula(&element.name);
                let b = other.formula(&element.name);
                ctx.iff(a, b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elements() -> Vec<StateElement> {
        vec![
            StateElement::arch_term("pc"),
            StateElement::arch_memory("reg_file"),
            StateElement::pipe_flag("if_id.valid"),
            StateElement::pipe_term("if_id.pc"),
        ]
    }

    #[test]
    fn initial_state_has_every_element() {
        let mut ctx = Context::new();
        let elems = elements();
        let state = SymbolicState::initial(&mut ctx, &elems, "");
        assert_eq!(state.len(), 4);
        assert!(state.contains("pc"));
        assert!(state.contains("if_id.valid"));
        assert!(matches!(state.value("pc"), Value::Term(_)));
        assert!(matches!(state.value("if_id.valid"), Value::Formula(_)));
    }

    #[test]
    fn prefix_distinguishes_two_initial_states() {
        let mut ctx = Context::new();
        let elems = elements();
        let a = SymbolicState::initial(&mut ctx, &elems, "a_");
        let b = SymbolicState::initial(&mut ctx, &elems, "b_");
        assert_ne!(a.term("pc"), b.term("pc"));
    }

    #[test]
    fn projection_keeps_only_requested_elements() {
        let mut ctx = Context::new();
        let elems = elements();
        let state = SymbolicState::initial(&mut ctx, &elems, "");
        let arch: Vec<StateElement> = elems.iter().filter(|e| e.architectural).cloned().collect();
        let projected = state.project(&arch);
        assert_eq!(projected.len(), 2);
        assert!(projected.contains("pc"));
        assert!(!projected.contains("if_id.valid"));
    }

    #[test]
    fn equality_formula_is_true_for_identical_states() {
        let mut ctx = Context::new();
        let elems = elements();
        let state = SymbolicState::initial(&mut ctx, &elems, "");
        let eq = state.equal_on(&mut ctx, &state.clone(), &elems);
        assert!(ctx.is_true(eq));
    }

    #[test]
    fn equality_formula_is_nontrivial_for_distinct_states() {
        let mut ctx = Context::new();
        let elems = elements();
        let a = SymbolicState::initial(&mut ctx, &elems, "a_");
        let b = SymbolicState::initial(&mut ctx, &elems, "b_");
        let eq = a.equal_on(&mut ctx, &b, &elems);
        assert!(!ctx.is_true(eq));
        assert!(!ctx.is_false(eq));
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn missing_element_panics() {
        let state = SymbolicState::new();
        let _ = state.value("nonexistent");
    }
}
