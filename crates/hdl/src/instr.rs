//! Instruction-field bundles: the read-only instruction memory as a family of
//! uninterpreted functions and predicates applied to the program counter.
//!
//! The benchmark designs assume no self-modifying code, which lets the
//! instruction memory be abstracted by UFs/UPs of the fetch PC (Section 2.1 of
//! the paper): one UF per word-level field (opcode, source and destination
//! register identifiers, immediate) and one UP per control classification
//! (register–register ALU, loads, stores, branches, jumps, ...).

use velv_eufm::{Context, FormulaId, TermId};

/// The decoded fields of one fetched instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstrFields {
    /// Opcode (selects the ALU operation).
    pub op: TermId,
    /// First source register identifier.
    pub src1: TermId,
    /// Second source register identifier.
    pub src2: TermId,
    /// Destination register identifier.
    pub dest: TermId,
    /// Immediate operand.
    pub imm: TermId,
    /// Register–register ALU instruction.
    pub is_alu_reg: FormulaId,
    /// Register–immediate ALU instruction.
    pub is_alu_imm: FormulaId,
    /// Load instruction.
    pub is_load: FormulaId,
    /// Store instruction.
    pub is_store: FormulaId,
    /// Conditional branch instruction.
    pub is_branch: FormulaId,
    /// Unconditional jump instruction.
    pub is_jump: FormulaId,
    /// Whether the instruction writes the register file.
    pub writes_rf: FormulaId,
    /// Whether the second operand comes from the immediate field.
    pub uses_imm: FormulaId,
}

impl InstrFields {
    /// Fetches and decodes the instruction at `pc`.
    ///
    /// All designs (implementation and specification) must use the same
    /// `prefix` for the same instruction memory so that the abstractions agree.
    pub fn fetch(ctx: &mut Context, prefix: &str, pc: TermId) -> Self {
        let uf = |ctx: &mut Context, field: &str| ctx.uf(&format!("{prefix}_{field}"), vec![pc]);
        let up = |ctx: &mut Context, field: &str| ctx.up(&format!("{prefix}_{field}"), vec![pc]);
        let op = uf(ctx, "op");
        let src1 = uf(ctx, "src1");
        let src2 = uf(ctx, "src2");
        let dest = uf(ctx, "dest");
        let imm = uf(ctx, "imm");
        let is_alu_reg = up(ctx, "is_alu_reg");
        let is_alu_imm = up(ctx, "is_alu_imm");
        let is_load = up(ctx, "is_load");
        let is_store = up(ctx, "is_store");
        let is_branch = up(ctx, "is_branch");
        let is_jump = up(ctx, "is_jump");
        // Derived controls: loads and ALU instructions write the register file;
        // register-immediate ALU instructions and loads use the immediate.
        let alu_any = ctx.or(is_alu_reg, is_alu_imm);
        let writes_rf = ctx.or(alu_any, is_load);
        let uses_imm = ctx.or(is_alu_imm, is_load);
        InstrFields {
            op,
            src1,
            src2,
            dest,
            imm,
            is_alu_reg,
            is_alu_imm,
            is_load,
            is_store,
            is_branch,
            is_jump,
            writes_rf,
            uses_imm,
        }
    }

    /// A "bubble": an instruction that has no architectural effect.  Used when
    /// a pipeline stage must be filled with a no-op (stalls, squashes,
    /// flushing).  Word-level fields keep their previous values (they are
    /// don't-cares once the control bits are off).
    pub fn bubble(ctx: &mut Context, template: &InstrFields) -> Self {
        let f = ctx.false_id();
        InstrFields {
            is_alu_reg: f,
            is_alu_imm: f,
            is_load: f,
            is_store: f,
            is_branch: f,
            is_jump: f,
            writes_rf: f,
            uses_imm: f,
            ..*template
        }
    }

    /// Multiplexes two instruction bundles under `cond` (`cond` true selects
    /// `then_i`).
    pub fn mux(
        ctx: &mut Context,
        cond: FormulaId,
        then_i: &InstrFields,
        else_i: &InstrFields,
    ) -> Self {
        InstrFields {
            op: ctx.ite_term(cond, then_i.op, else_i.op),
            src1: ctx.ite_term(cond, then_i.src1, else_i.src1),
            src2: ctx.ite_term(cond, then_i.src2, else_i.src2),
            dest: ctx.ite_term(cond, then_i.dest, else_i.dest),
            imm: ctx.ite_term(cond, then_i.imm, else_i.imm),
            is_alu_reg: ctx.ite_formula(cond, then_i.is_alu_reg, else_i.is_alu_reg),
            is_alu_imm: ctx.ite_formula(cond, then_i.is_alu_imm, else_i.is_alu_imm),
            is_load: ctx.ite_formula(cond, then_i.is_load, else_i.is_load),
            is_store: ctx.ite_formula(cond, then_i.is_store, else_i.is_store),
            is_branch: ctx.ite_formula(cond, then_i.is_branch, else_i.is_branch),
            is_jump: ctx.ite_formula(cond, then_i.is_jump, else_i.is_jump),
            writes_rf: ctx.ite_formula(cond, then_i.writes_rf, else_i.writes_rf),
            uses_imm: ctx.ite_formula(cond, then_i.uses_imm, else_i.uses_imm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_is_deterministic_in_pc() {
        let mut ctx = Context::new();
        let pc = ctx.term_var("pc0");
        let a = InstrFields::fetch(&mut ctx, "imem", pc);
        let b = InstrFields::fetch(&mut ctx, "imem", pc);
        assert_eq!(a, b, "same PC gives the same decoded fields");
        let other_pc = ctx.term_var("pc1");
        let c = InstrFields::fetch(&mut ctx, "imem", other_pc);
        assert_ne!(a.op, c.op);
    }

    #[test]
    fn different_memories_are_distinct() {
        let mut ctx = Context::new();
        let pc = ctx.term_var("pc0");
        let a = InstrFields::fetch(&mut ctx, "imem", pc);
        let b = InstrFields::fetch(&mut ctx, "imem2", pc);
        assert_ne!(a.op, b.op);
    }

    #[test]
    fn bubble_disables_all_effects() {
        let mut ctx = Context::new();
        let pc = ctx.term_var("pc0");
        let instr = InstrFields::fetch(&mut ctx, "imem", pc);
        let bubble = InstrFields::bubble(&mut ctx, &instr);
        assert!(ctx.is_false(bubble.writes_rf));
        assert!(ctx.is_false(bubble.is_store));
        assert!(ctx.is_false(bubble.is_branch));
        assert_eq!(
            bubble.op, instr.op,
            "word-level fields are retained as don't-cares"
        );
    }

    #[test]
    fn mux_selects_between_bundles() {
        let mut ctx = Context::new();
        let pc0 = ctx.term_var("pc0");
        let pc1 = ctx.term_var("pc1");
        let a = InstrFields::fetch(&mut ctx, "imem", pc0);
        let b = InstrFields::fetch(&mut ctx, "imem", pc1);
        let t = ctx.true_id();
        let f = ctx.false_id();
        assert_eq!(InstrFields::mux(&mut ctx, t, &a, &b), a);
        assert_eq!(InstrFields::mux(&mut ctx, f, &a, &b), b);
        let sel = ctx.prop_var("sel");
        let muxed = InstrFields::mux(&mut ctx, sel, &a, &b);
        assert_ne!(muxed, a);
        assert_ne!(muxed, b);
    }
}
