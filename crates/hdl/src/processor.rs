//! The [`Processor`] trait and the symbolic-simulation helpers (step, flush).

use crate::state::{StateElement, SymbolicState};
use velv_eufm::{Context, FormulaId};

/// A term-level processor model.
///
/// Both the pipelined/superscalar/VLIW *implementation* and the single-cycle
/// *specification* of a benchmark implement this trait.  The two must use the
/// same uninterpreted-function and -predicate names for the shared logic
/// blocks (ALUs, instruction memory, PC incrementer, ...) and declare the same
/// architectural state elements — that is what makes the Burch–Dill
/// commutative diagram meaningful.
pub trait Processor {
    /// Name of the design (e.g. `"1xDLX-C"`).
    fn name(&self) -> &str;

    /// All state elements, architectural and micro-architectural.
    fn state_elements(&self) -> Vec<StateElement>;

    /// The architectural state elements (the ISA-visible subset).
    fn arch_state(&self) -> Vec<StateElement> {
        self.state_elements()
            .into_iter()
            .filter(|e| e.architectural)
            .collect()
    }

    /// Maximum number of instructions the design can fetch (and hence
    /// complete) per clock cycle — the `k` of the Burch–Dill criterion.
    fn fetch_width(&self) -> usize;

    /// Number of clock cycles with fetching disabled that are guaranteed to
    /// drain every in-flight instruction into architectural state.
    fn flush_cycles(&self) -> usize;

    /// Performs one symbolic clock cycle.
    ///
    /// `fetch_enabled` controls whether new instructions may enter the
    /// pipeline; flushing passes `false` so that in-flight instructions
    /// complete while no new work starts.  The returned state must assign a
    /// value to every element of [`Processor::state_elements`].
    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState;

    /// Optional *completion windows* used by the decomposed ("weak criteria")
    /// evaluation of the correctness criterion.
    ///
    /// `windows[l]` must be a control-level formula (over the initial state
    /// `initial` and the post-step state `stepped`) that holds exactly when
    /// `l` of the instructions fetched during the verified clock cycle will
    /// eventually update architectural state (i.e. are not squashed).  The
    /// disjunction of the windows must be valid.  Designs that do not supply
    /// windows (`None`, the default) are decomposed with a sound but
    /// unoptimised fallback.
    fn completion_windows(
        &self,
        _ctx: &mut Context,
        _initial: &SymbolicState,
        _stepped: &SymbolicState,
    ) -> Option<Vec<FormulaId>> {
        None
    }
}

/// Simulates `steps` clock cycles with fetching enabled.
pub fn simulate(
    ctx: &mut Context,
    processor: &dyn Processor,
    state: &SymbolicState,
    steps: usize,
) -> SymbolicState {
    let enabled = ctx.true_id();
    let mut current = state.clone();
    for _ in 0..steps {
        current = processor.step(ctx, &current, enabled);
    }
    current
}

/// Flushes the pipeline: simulates [`Processor::flush_cycles`] cycles with
/// fetching disabled, so that every instruction in flight completes and the
/// state can be projected onto the architectural elements.
pub fn flush(ctx: &mut Context, processor: &dyn Processor, state: &SymbolicState) -> SymbolicState {
    let disabled = ctx.false_id();
    let mut current = state.clone();
    for _ in 0..processor.flush_cycles() {
        current = processor.step(ctx, &current, disabled);
    }
    current
}

/// Flushes and projects onto the architectural state in one call.
pub fn flush_to_arch(
    ctx: &mut Context,
    processor: &dyn Processor,
    state: &SymbolicState,
) -> SymbolicState {
    let flushed = flush(ctx, processor, state);
    flushed.project(&processor.arch_state())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateKind;

    /// A toy 2-stage "processor": stage latch holds a pending register write
    /// that retires into the register file one cycle later.
    struct Toy;

    impl Processor for Toy {
        fn name(&self) -> &str {
            "toy"
        }

        fn state_elements(&self) -> Vec<StateElement> {
            vec![
                StateElement::arch_term("pc"),
                StateElement::arch_memory("rf"),
                StateElement::pipe_flag("latch.valid"),
                StateElement::pipe_term("latch.dest"),
                StateElement::pipe_term("latch.data"),
            ]
        }

        fn fetch_width(&self) -> usize {
            1
        }

        fn flush_cycles(&self) -> usize {
            1
        }

        fn step(
            &self,
            ctx: &mut Context,
            state: &SymbolicState,
            fetch_enabled: FormulaId,
        ) -> SymbolicState {
            let pc = state.term("pc");
            let rf = state.term("rf");
            let valid = state.formula("latch.valid");
            let dest = state.term("latch.dest");
            let data = state.term("latch.data");

            // Retire the latched write.
            let written = ctx.write(rf, dest, data);
            let rf_next = ctx.ite_term(valid, written, rf);

            // Fetch a new instruction when allowed.
            let new_dest = ctx.uf("imem_dest", vec![pc]);
            let new_data = ctx.uf("imem_data", vec![pc]);
            let pc_plus = ctx.uf("pc_plus_4", vec![pc]);
            let pc_next = ctx.ite_term(fetch_enabled, pc_plus, pc);

            let mut next = SymbolicState::new();
            next.set_term("pc", pc_next);
            next.set_term("rf", rf_next);
            next.set_formula("latch.valid", fetch_enabled);
            next.set_term("latch.dest", ctx.ite_term(fetch_enabled, new_dest, dest));
            next.set_term("latch.data", ctx.ite_term(fetch_enabled, new_data, data));
            next
        }
    }

    #[test]
    fn arch_state_filters_architectural_elements() {
        let toy = Toy;
        let arch = toy.arch_state();
        assert_eq!(arch.len(), 2);
        assert!(arch.iter().all(|e| e.architectural));
        assert!(arch.iter().any(|e| e.kind == StateKind::Memory));
    }

    #[test]
    fn step_produces_complete_states() {
        let mut ctx = Context::new();
        let toy = Toy;
        let initial = SymbolicState::initial(&mut ctx, &toy.state_elements(), "");
        let enabled = ctx.true_id();
        let next = toy.step(&mut ctx, &initial, enabled);
        for element in toy.state_elements() {
            assert!(next.contains(&element.name), "missing {}", element.name);
        }
    }

    #[test]
    fn flush_disables_fetch() {
        let mut ctx = Context::new();
        let toy = Toy;
        let initial = SymbolicState::initial(&mut ctx, &toy.state_elements(), "");
        let flushed = flush(&mut ctx, &toy, &initial);
        // After flushing, the latch is invalid (fetch was disabled).
        assert!(ctx.is_false(flushed.formula("latch.valid")));
        // And the PC did not advance.
        assert_eq!(flushed.term("pc"), initial.term("pc"));
    }

    #[test]
    fn flush_to_arch_projects() {
        let mut ctx = Context::new();
        let toy = Toy;
        let initial = SymbolicState::initial(&mut ctx, &toy.state_elements(), "");
        let arch = flush_to_arch(&mut ctx, &toy, &initial);
        assert_eq!(arch.len(), 2);
        assert!(arch.contains("pc") && arch.contains("rf"));
    }

    #[test]
    fn simulate_advances_multiple_cycles() {
        let mut ctx = Context::new();
        let toy = Toy;
        let initial = SymbolicState::initial(&mut ctx, &toy.state_elements(), "");
        let after2 = simulate(&mut ctx, &toy, &initial, 2);
        assert_ne!(after2.term("pc"), initial.term("pc"));
    }
}
