//! Term-level processor modeling and symbolic simulation (the TLSim analog).
//!
//! Processors are modeled at the *term level*: word-level values (data,
//! register identifiers, addresses, program counters) are EUFM terms, the
//! functional units are uninterpreted functions, control decisions are
//! uninterpreted predicates or propositional variables, and register files /
//! memories are EUFM memory terms accessed with `read`/`write`.
//!
//! The crate provides:
//!
//! * [`state`] — symbolic machine states: named collections of term/formula
//!   values, plus the declaration of a processor's state elements,
//! * [`processor`] — the [`Processor`] trait (one symbolic step of a design)
//!   together with flushing and multi-step simulation helpers used by the
//!   Burch–Dill correctness criterion,
//! * [`instr`] — instruction-field bundles: the read-only instruction memory
//!   abstracted as a family of UFs/UPs applied to the program counter,
//! * [`components`] — small reusable pieces of term-level data-path logic
//!   (multiplexers, forwarded register-file reads, squash/stall helpers).
//!
//! The benchmark processors of the paper are built on top of this crate in
//! `velv-models`; the correctness criterion and the propositional translation
//! live in `velv-core`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod components;
pub mod instr;
pub mod processor;
pub mod state;

pub use instr::InstrFields;
pub use processor::{flush, simulate, Processor};
pub use state::{StateElement, StateKind, SymbolicState, Value};
