//! Reusable pieces of term-level data-path and control logic.

use velv_eufm::{Context, FormulaId, TermId};

/// Reads `addr` from the register file `rf` and then applies forwarding from
/// later pipeline stages.  `forwards` lists `(active, dest, data)` sources in
/// priority order: the *first* matching active source wins (closest stage
/// first, exactly like hardware forwarding muxes).
pub fn forwarded_read(
    ctx: &mut Context,
    rf: TermId,
    addr: TermId,
    forwards: &[(FormulaId, TermId, TermId)],
) -> TermId {
    let mut value = ctx.read(rf, addr);
    // Build the mux chain from lowest priority to highest so that the first
    // entry of `forwards` ends up controlling the outermost ITE.
    for &(active, dest, data) in forwards.iter().rev() {
        let addr_match = ctx.eq(addr, dest);
        let take = ctx.and(active, addr_match);
        value = ctx.ite_term(take, data, value);
    }
    value
}

/// Conditional register-file update: `write(rf, dest, data)` when `enable`
/// holds, otherwise the register file is unchanged.
pub fn conditional_write(
    ctx: &mut Context,
    rf: TermId,
    enable: FormulaId,
    dest: TermId,
    data: TermId,
) -> TermId {
    let written = ctx.write(rf, dest, data);
    ctx.ite_term(enable, written, rf)
}

/// Read-after-write hazard detection: the consumer reads `src` while the
/// producer (when `producer_active`) is about to write `dest`.
pub fn raw_hazard(
    ctx: &mut Context,
    producer_active: FormulaId,
    dest: TermId,
    src: TermId,
) -> FormulaId {
    let same = ctx.eq(dest, src);
    ctx.and(producer_active, same)
}

/// A two-input multiplexer over terms.
pub fn mux(ctx: &mut Context, sel: FormulaId, when_true: TermId, when_false: TermId) -> TermId {
    ctx.ite_term(sel, when_true, when_false)
}

/// Keeps `current` when `stall` holds, otherwise accepts `next` — the behaviour
/// of a pipeline latch with a stall (enable-low) input.
pub fn stall_latch(ctx: &mut Context, stall: FormulaId, current: TermId, next: TermId) -> TermId {
    ctx.ite_term(stall, current, next)
}

/// Same as [`stall_latch`] but for control (formula) fields.
pub fn stall_latch_flag(
    ctx: &mut Context,
    stall: FormulaId,
    current: FormulaId,
    next: FormulaId,
) -> FormulaId {
    ctx.ite_formula(stall, current, next)
}

/// Valid bit of a latch that is squashed when `squash` holds and stalled when
/// `stall` holds: `¬squash ∧ ITE(stall, current, incoming)`.
pub fn latch_valid(
    ctx: &mut Context,
    squash: FormulaId,
    stall: FormulaId,
    current: FormulaId,
    incoming: FormulaId,
) -> FormulaId {
    let kept = ctx.ite_formula(stall, current, incoming);
    let not_squash = ctx.not(squash);
    ctx.and(not_squash, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use velv_eufm::{Evaluator, Interpretation};

    #[test]
    fn forwarded_read_prefers_earliest_source() {
        let mut ctx = Context::new();
        let rf = ctx.term_var("rf");
        let addr = ctx.term_var("src");
        let d1 = ctx.term_var("mem_dest");
        let v1 = ctx.term_var("mem_data");
        let d2 = ctx.term_var("wb_dest");
        let v2 = ctx.term_var("wb_data");
        let t = ctx.true_id();
        let value = forwarded_read(&mut ctx, rf, addr, &[(t, d1, v1), (t, d2, v2)]);

        // When both destinations match, the first (MEM-stage) source wins.
        let mut interp = Interpretation::new();
        interp.set_term_var(&mut ctx, "src", 3);
        interp.set_term_var(&mut ctx, "mem_dest", 3);
        interp.set_term_var(&mut ctx, "wb_dest", 3);
        interp.set_term_var(&mut ctx, "mem_data", 111);
        interp.set_term_var(&mut ctx, "wb_data", 222);
        let picks_mem = ctx.eq(value, v1);
        let mut ev = Evaluator::new(&ctx, interp);
        assert!(ev.eval_formula(picks_mem));
    }

    #[test]
    fn forwarded_read_falls_back_to_register_file() {
        let mut ctx = Context::new();
        let rf = ctx.term_var("rf");
        let addr = ctx.term_var("src");
        let d1 = ctx.term_var("mem_dest");
        let v1 = ctx.term_var("mem_data");
        let t = ctx.true_id();
        let value = forwarded_read(&mut ctx, rf, addr, &[(t, d1, v1)]);
        let rf_read = ctx.read(rf, addr);
        let falls_back = ctx.eq(value, rf_read);
        let mut interp = Interpretation::new();
        interp.set_term_var(&mut ctx, "src", 1);
        interp.set_term_var(&mut ctx, "mem_dest", 2);
        let mut ev = Evaluator::new(&ctx, interp);
        assert!(ev.eval_formula(falls_back));
    }

    #[test]
    fn conditional_write_keeps_state_when_disabled() {
        let mut ctx = Context::new();
        let rf = ctx.term_var("rf");
        let dest = ctx.term_var("dest");
        let data = ctx.term_var("data");
        let f = ctx.false_id();
        let t = ctx.true_id();
        assert_eq!(conditional_write(&mut ctx, rf, f, dest, data), rf);
        let written = conditional_write(&mut ctx, rf, t, dest, data);
        assert_ne!(written, rf);
    }

    #[test]
    fn raw_hazard_requires_active_producer() {
        let mut ctx = Context::new();
        let dest = ctx.term_var("dest");
        let src = ctx.term_var("src");
        let f = ctx.false_id();
        let no_hazard = raw_hazard(&mut ctx, f, dest, src);
        assert!(ctx.is_false(no_hazard));
        let active = ctx.prop_var("active");
        let hazard = raw_hazard(&mut ctx, active, dest, src);
        assert!(!ctx.is_false(hazard));
    }

    #[test]
    fn latch_valid_squash_dominates_stall() {
        let mut ctx = Context::new();
        let cur = ctx.prop_var("cur");
        let inc = ctx.prop_var("inc");
        let t = ctx.true_id();
        let f = ctx.false_id();
        // Squash forces invalid regardless of stall.
        let squashed_stalled = latch_valid(&mut ctx, t, t, cur, inc);
        assert!(ctx.is_false(squashed_stalled));
        let squashed = latch_valid(&mut ctx, t, f, cur, inc);
        assert!(ctx.is_false(squashed));
        // No squash, stall keeps the current value.
        assert_eq!(latch_valid(&mut ctx, f, t, cur, inc), cur);
        // No squash, no stall accepts the incoming value.
        assert_eq!(latch_valid(&mut ctx, f, f, cur, inc), inc);
    }

    #[test]
    fn stall_latch_behaviour() {
        let mut ctx = Context::new();
        let cur = ctx.term_var("cur");
        let next = ctx.term_var("next");
        let t = ctx.true_id();
        let f = ctx.false_id();
        assert_eq!(stall_latch(&mut ctx, t, cur, next), cur);
        assert_eq!(stall_latch(&mut ctx, f, cur, next), next);
        let curf = ctx.prop_var("curf");
        let nextf = ctx.prop_var("nextf");
        assert_eq!(stall_latch_flag(&mut ctx, t, curf, nextf), curf);
        assert_eq!(stall_latch_flag(&mut ctx, f, curf, nextf), nextf);
    }
}
