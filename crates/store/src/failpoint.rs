//! A deterministic failpoint facility for fault-injection testing.
//!
//! A *failpoint* is a named site in library code (`store.append.body`,
//! `serve.job.run`, `proto.write.frame`, ...) that consults an armed trigger
//! before doing its work.  Tests arm triggers — "on the 3rd hit of
//! `store.append.body`, perform a short write of 7 bytes and fail" — and the
//! library misbehaves *exactly there*, deterministically, so crash recovery,
//! panic containment and client retry paths can be exercised without real
//! crashes, real disks or real packet loss.
//!
//! Two scopes are provided:
//!
//! * **Instance-scoped** [`Failpoints`] sets, owned by the component under
//!   test (e.g. each [`Store`](crate::Store) carries its own via
//!   [`StoreConfig::failpoints`](crate::StoreConfig)), so concurrently
//!   running tests never interfere;
//! * the **process-global** set ([`global`]) for sites without a natural
//!   owner (wire-protocol frames, service worker loops).
//!
//! The disarmed fast path is one relaxed atomic load — the facility is
//! compiled in unconditionally (tests, benches *and* production) precisely
//! because a fault-injection path that only exists in test builds rots.
//!
//! Triggers are **deterministic**: a trigger fires on an exact hit index of
//! its site, armed either explicitly ([`Failpoints::arm`]) or derived from a
//! seed ([`Failpoints::arm_seeded`], the driver of the seeded torture
//! suites).  Equal seeds arm equal plans.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Return a simulated IO error (`ErrorKind::Other`, "failpoint").
    Error,
    /// Write only the first `n` bytes of the buffer, then fail — a torn
    /// write, as left by a crash or a full disk mid-`write`.
    ShortWrite(usize),
    /// Panic with a recognizable message (worker-panic containment tests).
    Panic,
    /// Sleep for the duration, then proceed normally (slow disk / slow peer).
    Delay(Duration),
    /// Silently skip the operation while reporting success — a dropped wire
    /// frame.
    Drop,
}

struct Site {
    /// Hits left before the trigger fires (0 = fire on the next hit).
    after_hits: u64,
    action: FailAction,
    /// Disarm after firing once.
    one_shot: bool,
}

/// A set of named failpoint sites with armed triggers.
///
/// Cheap when disarmed (one relaxed atomic load per [`Failpoints::hit`]);
/// sites are consulted by name only while at least one trigger is armed.
pub struct Failpoints {
    armed: AtomicBool,
    sites: Mutex<HashMap<String, Site>>,
}

impl Failpoints {
    /// An empty, disarmed set.
    pub fn new() -> Failpoints {
        Failpoints {
            armed: AtomicBool::new(false),
            sites: Mutex::new(HashMap::new()),
        }
    }

    /// Arms `site` to perform `action` after `after_hits` passing hits (0 =
    /// the very next hit), once; the trigger disarms after firing.
    pub fn arm(&self, site: &str, after_hits: u64, action: FailAction) {
        let mut sites = self.sites.lock().expect("failpoint site lock");
        sites.insert(
            site.to_owned(),
            Site {
                after_hits,
                action,
                one_shot: true,
            },
        );
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Arms `site` to perform `action` on *every* hit from `after_hits` on.
    pub fn arm_persistent(&self, site: &str, after_hits: u64, action: FailAction) {
        let mut sites = self.sites.lock().expect("failpoint site lock");
        sites.insert(
            site.to_owned(),
            Site {
                after_hits,
                action,
                one_shot: false,
            },
        );
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Derives a one-shot trigger for one of `sites` from `seed`: the site,
    /// the hit index (below `max_hits`) and the action are all deterministic
    /// functions of the seed, so a failing torture cycle can be replayed by
    /// its seed alone.  Returns the `(site, hit, action)` chosen.
    pub fn arm_seeded(
        &self,
        seed: u64,
        sites: &[&str],
        max_hits: u64,
    ) -> (String, u64, FailAction) {
        assert!(!sites.is_empty(), "arm_seeded needs at least one site");
        let mut state = seed;
        let mut next = move || -> u64 {
            // SplitMix64 — matches `velv_sat::rng::SmallRng` so seeds printed
            // by one harness replay in the other.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let site = sites[(next() % sites.len() as u64) as usize];
        let hit = next() % max_hits.max(1);
        let action = match next() % 3 {
            0 => FailAction::Error,
            1 => FailAction::ShortWrite((next() % 24) as usize),
            _ => FailAction::ShortWrite(0),
        };
        self.arm(site, hit, action.clone());
        (site.to_owned(), hit, action)
    }

    /// Disarms one site.
    pub fn clear(&self, site: &str) {
        let mut sites = self.sites.lock().expect("failpoint site lock");
        sites.remove(site);
        if sites.is_empty() {
            self.armed.store(false, Ordering::SeqCst);
        }
    }

    /// Disarms every site.
    pub fn clear_all(&self) {
        self.sites.lock().expect("failpoint site lock").clear();
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Consults `site`: `None` to proceed normally, `Some(action)` when an
    /// armed trigger fires.  [`FailAction::Delay`] is performed here (the
    /// call sleeps and returns `None`); the other actions are returned for
    /// the call site to enact, since only it knows what a short write or a
    /// dropped frame means locally.
    pub fn hit(&self, site: &str) -> Option<FailAction> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let fired = {
            let mut sites = self.sites.lock().expect("failpoint site lock");
            match sites.get_mut(site) {
                None => None,
                Some(entry) => {
                    if entry.after_hits > 0 {
                        entry.after_hits -= 1;
                        None
                    } else {
                        let action = entry.action.clone();
                        if entry.one_shot {
                            sites.remove(site);
                            if sites.is_empty() {
                                self.armed.store(false, Ordering::SeqCst);
                            }
                        }
                        Some(action)
                    }
                }
            }
        };
        match fired {
            Some(FailAction::Delay(duration)) => {
                std::thread::sleep(duration);
                None
            }
            other => other,
        }
    }

    /// [`Failpoints::hit`] specialized for IO sites: performs
    /// [`FailAction::Error`] and [`FailAction::Panic`] directly, returns
    /// `Ok(Some(n))` for a short write of `n` bytes and `Ok(None)` to
    /// proceed.  [`FailAction::Drop`] maps to a short write of 0 bytes that
    /// *succeeds* — the bytes vanish without an error, as on a lying disk.
    ///
    /// # Errors
    ///
    /// Returns the simulated IO error of a fired [`FailAction::Error`].
    ///
    /// # Panics
    ///
    /// Panics when a fired trigger is [`FailAction::Panic`].
    pub fn hit_io(&self, site: &str) -> std::io::Result<Option<usize>> {
        match self.hit(site) {
            None => Ok(None),
            Some(FailAction::Error) => Err(std::io::Error::other(format!(
                "failpoint {site}: injected IO error"
            ))),
            Some(FailAction::ShortWrite(n)) => Ok(Some(n)),
            Some(FailAction::Drop) => Ok(Some(0)),
            Some(FailAction::Panic) => panic!("failpoint {site}: injected panic"),
            Some(FailAction::Delay(_)) => Ok(None),
        }
    }
}

impl Default for Failpoints {
    fn default() -> Self {
        Failpoints::new()
    }
}

/// The process-global failpoint set, for sites without a natural owner
/// (wire frames, service worker loops).  Tests sharing it must arm disjoint
/// sites or serialize.
pub fn global() -> &'static Failpoints {
    static GLOBAL: OnceLock<Failpoints> = OnceLock::new();
    GLOBAL.get_or_init(Failpoints::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_pass_through() {
        let fp = Failpoints::new();
        assert_eq!(fp.hit("anything"), None);
        assert!(fp.hit_io("anything").unwrap().is_none());
    }

    #[test]
    fn one_shot_fires_on_the_exact_hit_then_disarms() {
        let fp = Failpoints::new();
        fp.arm("site", 2, FailAction::Error);
        assert_eq!(fp.hit("site"), None);
        assert_eq!(fp.hit("site"), None);
        assert_eq!(fp.hit("site"), Some(FailAction::Error));
        assert_eq!(fp.hit("site"), None, "one-shot triggers disarm");
        assert!(!fp.armed.load(Ordering::SeqCst));
    }

    #[test]
    fn persistent_triggers_keep_firing() {
        let fp = Failpoints::new();
        fp.arm_persistent("site", 1, FailAction::ShortWrite(3));
        assert_eq!(fp.hit("site"), None);
        assert_eq!(fp.hit("site"), Some(FailAction::ShortWrite(3)));
        assert_eq!(fp.hit("site"), Some(FailAction::ShortWrite(3)));
        fp.clear("site");
        assert_eq!(fp.hit("site"), None);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = Failpoints::new();
        let b = Failpoints::new();
        let sites = ["x", "y", "z"];
        let plan_a = a.arm_seeded(42, &sites, 100);
        let plan_b = b.arm_seeded(42, &sites, 100);
        assert_eq!(plan_a, plan_b);
        let plan_c = Failpoints::new().arm_seeded(43, &sites, 100);
        // Different seeds *may* collide on one field, never on the test's
        // purpose: the plan is a pure function of the seed.
        assert_eq!(Failpoints::new().arm_seeded(43, &sites, 100), plan_c);
    }

    #[test]
    fn io_helper_maps_actions() {
        let fp = Failpoints::new();
        fp.arm("e", 0, FailAction::Error);
        assert!(fp.hit_io("e").is_err());
        fp.arm("s", 0, FailAction::ShortWrite(5));
        assert_eq!(fp.hit_io("s").unwrap(), Some(5));
        fp.arm("d", 0, FailAction::Drop);
        assert_eq!(fp.hit_io("d").unwrap(), Some(0));
    }
}
