//! CRC-32 (IEEE 802.3 polynomial), the checksum guarding every log record.
//!
//! A table-driven implementation of the same CRC used by gzip, PNG and
//! Ethernet — well understood, cheap (one table lookup per byte), and strong
//! enough for its job here: detecting torn or bit-rotted log records during
//! the recovery scan.  The store does not defend against an *adversary*
//! editing the log (that is what certified verdicts are for); it defends
//! against crashes and disks.

/// The bit-reversed IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at first use.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"record payload".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), reference, "bit {i}");
        }
    }
}
