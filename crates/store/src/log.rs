//! The crash-safe append-only record log and its recovery scan.
//!
//! # On-disk format
//!
//! A store is a directory:
//!
//! ```text
//! <dir>/
//!   verdicts.log        the record log
//!   artifacts/          sidecar files for large payload attachments
//!     <seq:016x>.bin
//! ```
//!
//! The log is a sequence of length-prefixed, CRC-checksummed records:
//!
//! ```text
//! record  := [len: u32 LE] [crc: u32 LE] [body: len bytes]
//! body    := [key: u128 LE] [seq: u64 LE] [flags: u8] [payload...]
//! flags   := bit 0: a sidecar file artifacts/<seq>.bin exists
//! ```
//!
//! `crc` covers exactly `body`.  Records are never updated in place; a
//! re-append of the same key supersedes earlier records (last write wins),
//! and [`Store::compact`] rewrites only the live ones.
//!
//! # Recovery
//!
//! [`Store::open`] scans the log sequentially, rebuilding the in-memory
//! index.  The scan stops at the first sign of corruption — a short header,
//! an implausible length, a short body, or a CRC mismatch — and truncates
//! the file there: everything before the bad record is kept, everything from
//! it on is discarded and counted in the [`RecoveryReport`].  This is the
//! crash contract of an append-only log: a torn tail is expected after
//! power loss and repairs to the longest checksummed prefix.
//!
//! # Durability
//!
//! [`FsyncPolicy`] picks the durability point: `Always` fsyncs after every
//! append (an acked record survives kill -9 and power loss), `EveryN(n)`
//! bounds loss to the last `n` appends, `Os` leaves flushing to the page
//! cache (crash-consistent but not crash-durable).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::crc::crc32;
use crate::failpoint::{FailAction, Failpoints};

/// Log file name inside the store directory.
const LOG_FILE: &str = "verdicts.log";
/// Sidecar directory name inside the store directory.
const ARTIFACT_DIR: &str = "artifacts";
/// Bytes of record header: `len` + `crc`.
const HEADER_BYTES: usize = 8;
/// Bytes of body preamble: key + seq + flags.
const BODY_PREAMBLE: usize = 16 + 8 + 1;
/// Upper bound on a single record body; longer length prefixes are treated
/// as corruption by the recovery scan (and rejected at append time).
const MAX_RECORD_BYTES: usize = 64 << 20;
/// `flags` bit: record has a sidecar file.
const FLAG_SIDECAR: u8 = 1;

/// When appended records are pushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: an acked append is durable.
    Always,
    /// `fdatasync` every `n` appends: bounds loss to the last `n` acks.
    EveryN(u64),
    /// Never fsync explicitly; the OS page cache decides.  Crash-consistent
    /// (recovery still yields a valid prefix) but not crash-durable.
    Os,
}

impl FsyncPolicy {
    /// Parses `always`, `os` or `every-<n>` (e.g. `every-64`).
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "os" => Ok(FsyncPolicy::Os),
            other => match other.strip_prefix("every-") {
                Some(n) => n
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .map(FsyncPolicy::EveryN)
                    .ok_or_else(|| format!("bad fsync interval `{n}`")),
                None => Err(format!(
                    "unknown fsync policy `{other}` (want always, every-<n> or os)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Os => write!(f, "os"),
        }
    }
}

/// Configuration for [`Store::open`].
#[derive(Clone)]
pub struct StoreConfig {
    /// The store directory; created (with parents) if missing.
    pub dir: PathBuf,
    /// The durability policy.
    pub fsync: FsyncPolicy,
    /// Failpoint set consulted by store IO sites (see [`crate::failpoint`]).
    /// `None` means the sites are never armed.
    pub failpoints: Option<Arc<Failpoints>>,
    /// Registry for the store's `velv_store_*` metrics; `None` uses
    /// detached (unexported) cells.
    pub registry: Option<velv_obs::Registry>,
}

impl StoreConfig {
    /// A config with the given directory, `fsync=always`, no failpoints and
    /// detached metrics.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            failpoints: None,
            registry: None,
        }
    }
}

/// What the recovery scan found on open.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Valid records scanned (including ones later superseded).
    pub records: u64,
    /// Distinct live keys in the rebuilt index.
    pub live: u64,
    /// Bytes discarded by truncating at the first bad record (0 on a clean
    /// log).
    pub truncated_bytes: u64,
    /// Log size after recovery, in bytes.
    pub log_bytes: u64,
    /// Wall time of the scan.
    pub scan_time: Duration,
}

/// What a [`Store::compact`] pass did.
#[derive(Clone, Debug, Default)]
pub struct CompactionReport {
    /// Live records rewritten into the fresh log.
    pub live: u64,
    /// Bytes reclaimed from the log file (old size minus new size).
    pub reclaimed_bytes: u64,
    /// Orphaned sidecar files removed.
    pub removed_sidecars: u64,
}

/// One live record read back from the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The 128-bit key (problem fingerprint in `velv_serve`).
    pub key: u128,
    /// The append sequence number, unique per record for the life of the
    /// store directory.
    pub seq: u64,
    /// The inline payload.
    pub payload: Vec<u8>,
    /// The sidecar contents, if the record had one and its file is intact.
    /// `None` either because no sidecar was written or because the file is
    /// missing/damaged — the latter is counted in
    /// `velv_store_sidecar_missing_total`.
    pub sidecar: Option<Vec<u8>>,
}

#[derive(Clone, Copy)]
struct IndexEntry {
    offset: u64,
    body_len: u32,
    seq: u64,
    sidecar: bool,
}

#[derive(Clone)]
struct Metrics {
    appends: velv_obs::Counter,
    fsyncs: velv_obs::Counter,
    append_errors: velv_obs::Counter,
    recovered_records: velv_obs::Counter,
    truncated_bytes: velv_obs::Counter,
    sidecar_missing: velv_obs::Counter,
    compactions: velv_obs::Counter,
    live_records: velv_obs::Gauge,
    log_bytes: velv_obs::Gauge,
}

impl Metrics {
    fn new(registry: Option<&velv_obs::Registry>) -> Metrics {
        match registry {
            Some(r) => Metrics {
                appends: r.counter("velv_store_appends_total", "Records appended."),
                fsyncs: r.counter("velv_store_fsyncs_total", "Explicit fsync calls."),
                append_errors: r.counter(
                    "velv_store_append_errors_total",
                    "Appends failed by IO errors (store poisoned until reopen).",
                ),
                recovered_records: r.counter(
                    "velv_store_recovered_records_total",
                    "Valid records scanned during recovery.",
                ),
                truncated_bytes: r.counter(
                    "velv_store_truncated_bytes_total",
                    "Bytes discarded by torn-tail truncation during recovery.",
                ),
                sidecar_missing: r.counter(
                    "velv_store_sidecar_missing_total",
                    "Records whose sidecar file was missing or damaged at read.",
                ),
                compactions: r.counter("velv_store_compactions_total", "Compaction passes."),
                live_records: r.gauge("velv_store_live_records", "Distinct live keys."),
                log_bytes: r.gauge("velv_store_log_bytes", "Log file size in bytes."),
            },
            None => Metrics {
                appends: velv_obs::Counter::detached(),
                fsyncs: velv_obs::Counter::detached(),
                append_errors: velv_obs::Counter::detached(),
                recovered_records: velv_obs::Counter::detached(),
                truncated_bytes: velv_obs::Counter::detached(),
                sidecar_missing: velv_obs::Counter::detached(),
                compactions: velv_obs::Counter::detached(),
                live_records: velv_obs::Gauge::detached(),
                log_bytes: velv_obs::Gauge::detached(),
            },
        }
    }
}

struct StoreInner {
    file: File,
    /// Offset one past the last valid record: where the next append lands.
    tail: u64,
    next_seq: u64,
    index: HashMap<u128, IndexEntry>,
    appends_since_sync: u64,
    /// Set by a failed append: the log may have a torn tail the in-memory
    /// state does not reflect, so every later mutation is refused until the
    /// store is reopened (whose recovery scan repairs the tail).
    poisoned: Option<String>,
}

/// A crash-safe persistent record store; see the [module docs](self) for the
/// format and recovery contract.
///
/// All methods take `&self`; the store is internally synchronized and can be
/// shared across threads behind an `Arc`.
pub struct Store {
    dir: PathBuf,
    fsync: FsyncPolicy,
    failpoints: Option<Arc<Failpoints>>,
    metrics: Metrics,
    inner: Mutex<StoreInner>,
}

impl Store {
    /// Opens (creating if absent) the store at `config.dir`, running the
    /// recovery scan to rebuild the index and repair any torn tail.
    ///
    /// # Errors
    ///
    /// Returns any IO error creating the directory, opening the log, or
    /// truncating a damaged tail.  Corrupt *records* are not errors — they
    /// are truncated away and counted in the [`RecoveryReport`].
    pub fn open(config: StoreConfig) -> io::Result<(Store, RecoveryReport)> {
        fs::create_dir_all(&config.dir)?;
        fs::create_dir_all(config.dir.join(ARTIFACT_DIR))?;
        let log_path = config.dir.join(LOG_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;

        let metrics = Metrics::new(config.registry.as_ref());
        let started = Instant::now();
        let (index, tail, next_seq, records, truncated) = scan_log(&mut file)?;
        if truncated > 0 {
            file.set_len(tail)?;
            file.sync_data()?;
        }
        let report = RecoveryReport {
            records,
            live: index.len() as u64,
            truncated_bytes: truncated,
            log_bytes: tail,
            scan_time: started.elapsed(),
        };
        metrics.recovered_records.add(records);
        metrics.truncated_bytes.add(truncated);
        metrics.live_records.set(index.len() as i64);
        metrics.log_bytes.set(tail as i64);

        let store = Store {
            dir: config.dir,
            fsync: config.fsync,
            failpoints: config.failpoints,
            metrics,
            inner: Mutex::new(StoreInner {
                file,
                tail,
                next_seq,
                index,
                appends_since_sync: 0,
                poisoned: None,
            }),
        };
        Ok((store, report))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Number of distinct live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store lock").index.len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current log file size in bytes.
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").tail
    }

    /// True when `key` has a live record.
    pub fn contains(&self, key: u128) -> bool {
        self.inner
            .lock()
            .expect("store lock")
            .index
            .contains_key(&key)
    }

    fn fail_hit(&self, site: &str) -> Option<FailAction> {
        self.failpoints.as_ref().and_then(|fp| fp.hit(site))
    }

    /// Writes `buf` at the current position of `file`, honoring a fired
    /// failpoint at `site`: `Error` writes nothing, `ShortWrite(n)` writes
    /// the first `n` bytes — both then fail, leaving a torn tail exactly as
    /// a crash would.  `Drop` reports success without writing (a lying
    /// disk); `Panic` panics.
    fn write_site(&self, file: &mut File, site: &str, buf: &[u8]) -> io::Result<()> {
        match self.fail_hit(site) {
            None | Some(FailAction::Delay(_)) => file.write_all(buf),
            Some(FailAction::Error) => Err(io::Error::other(format!(
                "failpoint {site}: injected IO error"
            ))),
            Some(FailAction::ShortWrite(n)) => {
                let n = n.min(buf.len());
                file.write_all(&buf[..n])?;
                Err(io::Error::other(format!(
                    "failpoint {site}: short write ({n} of {} bytes)",
                    buf.len()
                )))
            }
            Some(FailAction::Drop) => Ok(()),
            Some(FailAction::Panic) => panic!("failpoint {site}: injected panic"),
        }
    }

    fn sync_site(&self, file: &File, site: &str) -> io::Result<()> {
        match self.fail_hit(site) {
            None | Some(FailAction::Delay(_)) | Some(FailAction::Drop) => {
                self.metrics.fsyncs.inc();
                file.sync_data()
            }
            Some(FailAction::Error) => Err(io::Error::other(format!(
                "failpoint {site}: injected IO error"
            ))),
            Some(FailAction::ShortWrite(_)) => Err(io::Error::other(format!(
                "failpoint {site}: injected fsync failure"
            ))),
            Some(FailAction::Panic) => panic!("failpoint {site}: injected panic"),
        }
    }

    fn sidecar_path(&self, seq: u64) -> PathBuf {
        self.dir.join(ARTIFACT_DIR).join(format!("{seq:016x}.bin"))
    }

    /// Appends a record for `key`, superseding any earlier record with the
    /// same key, and returns its sequence number.  `sidecar` bytes are
    /// spilled to a sidecar file written (and, under `fsync=always`,
    /// synced) *before* the log record that references it, so a recovered
    /// record's sidecar is present unless the crash tore the sidecar write
    /// itself — in which case reads degrade to `sidecar: None` rather than
    /// fail.
    ///
    /// Once the configured fsync policy's durability point has passed, the
    /// record survives process kill and power loss.
    ///
    /// # Errors
    ///
    /// Any IO error (real or injected) poisons the store: the log may hold
    /// a torn tail that the in-memory index does not reflect, so all later
    /// appends fail until the store is reopened and recovery repairs the
    /// tail.  The in-memory index never advertises a record whose write
    /// failed.
    pub fn append(&self, key: u128, payload: &[u8], sidecar: Option<&[u8]>) -> io::Result<u64> {
        if payload.len() + BODY_PREAMBLE > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} bytes exceeds record cap", payload.len()),
            ));
        }
        let mut inner = self.inner.lock().expect("store lock");
        if let Some(why) = &inner.poisoned {
            return Err(io::Error::other(format!(
                "store poisoned by earlier append failure ({why}); reopen to recover"
            )));
        }
        let seq = inner.next_seq;
        let result = self.append_locked(&mut inner, key, seq, payload, sidecar);
        match result {
            Ok(()) => Ok(seq),
            Err(err) => {
                inner.poisoned = Some(err.to_string());
                self.metrics.append_errors.inc();
                Err(err)
            }
        }
    }

    fn append_locked(
        &self,
        inner: &mut StoreInner,
        key: u128,
        seq: u64,
        payload: &[u8],
        sidecar: Option<&[u8]>,
    ) -> io::Result<()> {
        // Sidecar first: a crash between the two writes orphans a file
        // (harmless, reaped by compaction) instead of dangling a reference.
        if let Some(bytes) = sidecar {
            let path = self.sidecar_path(seq);
            let mut side = File::create(&path)?;
            self.write_site(&mut side, "store.append.sidecar", bytes)?;
            if self.fsync == FsyncPolicy::Always {
                self.sync_site(&side, "store.append.sidecar.fsync")?;
            }
        }

        let mut body = Vec::with_capacity(BODY_PREAMBLE + payload.len());
        body.extend_from_slice(&key.to_le_bytes());
        body.extend_from_slice(&seq.to_le_bytes());
        body.push(if sidecar.is_some() { FLAG_SIDECAR } else { 0 });
        body.extend_from_slice(payload);

        let mut record = Vec::with_capacity(HEADER_BYTES + body.len());
        record.extend_from_slice(&(body.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&body).to_le_bytes());
        record.extend_from_slice(&body);

        let tail = inner.tail;
        inner.file.seek(SeekFrom::Start(tail))?;
        // Borrow the file out of `inner` for the failpoint-aware write.
        let mut file = &inner.file;
        match self.fail_hit("store.append.body") {
            None | Some(FailAction::Delay(_)) => file.write_all(&record)?,
            Some(FailAction::Error) => {
                return Err(io::Error::other(
                    "failpoint store.append.body: injected IO error",
                ))
            }
            Some(FailAction::ShortWrite(n)) => {
                let n = n.min(record.len());
                file.write_all(&record[..n])?;
                return Err(io::Error::other(format!(
                    "failpoint store.append.body: short write ({n} of {} bytes)",
                    record.len()
                )));
            }
            Some(FailAction::Drop) => {}
            Some(FailAction::Panic) => panic!("failpoint store.append.body: injected panic"),
        }

        let should_sync = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => inner.appends_since_sync + 1 >= n,
            FsyncPolicy::Os => false,
        };
        if should_sync {
            self.sync_site(&inner.file, "store.append.fsync")?;
            inner.appends_since_sync = 0;
        } else {
            inner.appends_since_sync += 1;
        }

        inner.tail = tail + record.len() as u64;
        inner.next_seq = seq + 1;
        inner.index.insert(
            key,
            IndexEntry {
                offset: tail,
                body_len: body.len() as u32,
                seq,
                sidecar: sidecar.is_some(),
            },
        );
        self.metrics.appends.inc();
        self.metrics.live_records.set(inner.index.len() as i64);
        self.metrics.log_bytes.set(inner.tail as i64);
        Ok(())
    }

    /// Forces an fsync of the log regardless of policy.
    ///
    /// # Errors
    ///
    /// Returns the underlying `fdatasync` error, if any.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        self.metrics.fsyncs.inc();
        inner.file.sync_data()?;
        inner.appends_since_sync = 0;
        Ok(())
    }

    /// Reads the live record for `key`, or `None` if absent.  A referenced
    /// sidecar that is missing or damaged degrades the record to
    /// `sidecar: None` (counted in `velv_store_sidecar_missing_total`)
    /// rather than failing the read.
    ///
    /// # Errors
    ///
    /// Returns an IO error only for log-file read failures or an
    /// index/log mismatch (which indicates external interference).
    pub fn get(&self, key: u128) -> io::Result<Option<Record>> {
        let mut inner = self.inner.lock().expect("store lock");
        let entry = match inner.index.get(&key) {
            Some(entry) => *entry,
            None => return Ok(None),
        };
        let record = self.read_entry(&mut inner, entry)?;
        Ok(Some(record))
    }

    fn read_entry(&self, inner: &mut StoreInner, entry: IndexEntry) -> io::Result<Record> {
        inner.file.seek(SeekFrom::Start(entry.offset))?;
        let mut framed = vec![0u8; HEADER_BYTES + entry.body_len as usize];
        inner.file.read_exact(&mut framed)?;
        let body = &framed[HEADER_BYTES..];
        let stored_crc = u32::from_le_bytes(framed[4..8].try_into().expect("crc slice"));
        if crc32(body) != stored_crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record CRC mismatch on read (log modified externally?)",
            ));
        }
        let key = u128::from_le_bytes(body[..16].try_into().expect("key slice"));
        let seq = u64::from_le_bytes(body[16..24].try_into().expect("seq slice"));
        let payload = body[BODY_PREAMBLE..].to_vec();
        let sidecar = if entry.sidecar {
            match fs::read(self.sidecar_path(seq)) {
                Ok(bytes) => Some(bytes),
                Err(_) => {
                    self.metrics.sidecar_missing.inc();
                    None
                }
            }
        } else {
            None
        };
        Ok(Record {
            key,
            seq,
            payload,
            sidecar,
        })
    }

    /// Reads every live record, ordered by sequence number (append order) —
    /// the warm-boot replay path.
    ///
    /// # Errors
    ///
    /// Returns the first log-file read failure, if any.
    pub fn live_records(&self) -> io::Result<Vec<Record>> {
        let mut inner = self.inner.lock().expect("store lock");
        let mut entries: Vec<IndexEntry> = inner.index.values().copied().collect();
        entries.sort_by_key(|e| e.seq);
        let mut records = Vec::with_capacity(entries.len());
        for entry in entries {
            records.push(self.read_entry(&mut inner, entry)?);
        }
        Ok(records)
    }

    /// Rewrites the live records into a fresh log (atomically swapped in by
    /// rename), dropping superseded records and reaping orphaned sidecar
    /// files.  Readers and writers are blocked for the duration.
    ///
    /// # Errors
    ///
    /// Any IO error; the original log is untouched unless the final rename
    /// succeeded, so a failed compaction never loses records.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        let mut inner = self.inner.lock().expect("store lock");
        if let Some(why) = &inner.poisoned {
            return Err(io::Error::other(format!(
                "store poisoned by earlier append failure ({why}); reopen to recover"
            )));
        }
        let old_bytes = inner.tail;
        let mut entries: Vec<IndexEntry> = inner.index.values().copied().collect();
        entries.sort_by_key(|e| e.seq);

        let tmp_path = self.dir.join(format!("{LOG_FILE}.compact"));
        let mut tmp = File::create(&tmp_path)?;
        let mut new_index: HashMap<u128, IndexEntry> = HashMap::with_capacity(entries.len());
        let mut offset = 0u64;
        for entry in &entries {
            inner.file.seek(SeekFrom::Start(entry.offset))?;
            let mut framed = vec![0u8; HEADER_BYTES + entry.body_len as usize];
            inner.file.read_exact(&mut framed)?;
            tmp.write_all(&framed)?;
            let key = u128::from_le_bytes(
                framed[HEADER_BYTES..HEADER_BYTES + 16]
                    .try_into()
                    .expect("key slice"),
            );
            new_index.insert(key, IndexEntry { offset, ..*entry });
            offset += framed.len() as u64;
        }
        tmp.sync_all()?;
        drop(tmp);
        fs::rename(&tmp_path, self.dir.join(LOG_FILE))?;
        sync_dir(&self.dir);

        inner.file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.dir.join(LOG_FILE))?;
        inner.tail = offset;
        inner.index = new_index;
        inner.appends_since_sync = 0;

        // Reap sidecars whose record is gone.
        let live_seqs: std::collections::HashSet<u64> =
            inner.index.values().map(|e| e.seq).collect();
        let mut removed = 0u64;
        if let Ok(dir) = fs::read_dir(self.dir.join(ARTIFACT_DIR)) {
            for file in dir.flatten() {
                let name = file.file_name();
                let name = name.to_string_lossy();
                let seq = name
                    .strip_suffix(".bin")
                    .and_then(|hex| u64::from_str_radix(hex, 16).ok());
                if let Some(seq) = seq {
                    if !live_seqs.contains(&seq) && fs::remove_file(file.path()).is_ok() {
                        removed += 1;
                    }
                }
            }
        }

        self.metrics.compactions.inc();
        self.metrics.log_bytes.set(inner.tail as i64);
        Ok(CompactionReport {
            live: inner.index.len() as u64,
            reclaimed_bytes: old_bytes.saturating_sub(offset),
            removed_sidecars: removed,
        })
    }
}

impl velv_obs::MemFootprint for Store {
    /// Deep measured bytes of the store's in-memory side — the key index
    /// (occupied and reserved slots); the log itself lives on disk.
    fn measured_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("store lock");
        std::mem::size_of::<Store>()
            + inner.index.capacity()
                * (std::mem::size_of::<u128>() + std::mem::size_of::<IndexEntry>() + 8)
    }
}

/// Fsync a directory so a rename within it is durable; best-effort (some
/// filesystems refuse directory fsync).
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

type ScanResult = (HashMap<u128, IndexEntry>, u64, u64, u64, u64);

/// Sequentially scans the log, returning `(index, tail, next_seq, records,
/// truncated_bytes)`.  Stops at the first corrupt record; `tail` is the
/// offset of the longest valid prefix.
fn scan_log(file: &mut File) -> io::Result<ScanResult> {
    let file_len = file.seek(SeekFrom::End(0))?;
    file.seek(SeekFrom::Start(0))?;
    let mut reader = io::BufReader::with_capacity(1 << 20, file);
    let mut index: HashMap<u128, IndexEntry> = HashMap::new();
    let mut offset = 0u64;
    let mut records = 0u64;
    let mut next_seq = 0u64;
    let mut header = [0u8; HEADER_BYTES];
    let mut body: Vec<u8> = Vec::new();
    loop {
        if file_len - offset < HEADER_BYTES as u64 {
            break; // clean EOF or torn header
        }
        reader.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("len slice")) as usize;
        let stored_crc = u32::from_le_bytes(header[4..8].try_into().expect("crc slice"));
        if !(BODY_PREAMBLE..=MAX_RECORD_BYTES).contains(&len) {
            break; // implausible length: corruption
        }
        if file_len - offset - (HEADER_BYTES as u64) < len as u64 {
            break; // torn body
        }
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
        if crc32(&body) != stored_crc {
            break; // corrupt record
        }
        let key = u128::from_le_bytes(body[..16].try_into().expect("key slice"));
        let seq = u64::from_le_bytes(body[16..24].try_into().expect("seq slice"));
        let flags = body[24];
        index.insert(
            key,
            IndexEntry {
                offset,
                body_len: len as u32,
                seq,
                sidecar: flags & FLAG_SIDECAR != 0,
            },
        );
        records += 1;
        next_seq = next_seq.max(seq + 1);
        offset += (HEADER_BYTES + len) as u64;
    }
    Ok((index, offset, next_seq, records, file_len - offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("velv_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_last_write_wins() {
        let dir = temp_dir("roundtrip");
        let (store, report) = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(report.records, 0);
        store.append(1, b"one", None).unwrap();
        store.append(2, b"two", None).unwrap();
        store.append(1, b"one-v2", None).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).unwrap().unwrap().payload, b"one-v2");
        assert_eq!(store.get(2).unwrap().unwrap().payload, b"two");
        assert_eq!(store.get(3).unwrap(), None);
        drop(store);

        let (store, report) = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(report.records, 3);
        assert_eq!(report.live, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(store.get(1).unwrap().unwrap().payload, b"one-v2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = temp_dir("torn");
        let (store, _) = Store::open(StoreConfig::new(&dir)).unwrap();
        store.append(1, b"kept", None).unwrap();
        let good_len = store.log_bytes();
        drop(store);

        // Simulate a crash mid-append: half a record at the tail.
        let log = dir.join(LOG_FILE);
        let mut file = OpenOptions::new().append(true).open(&log).unwrap();
        file.write_all(&[0x20, 0, 0, 0, 0xde, 0xad, 0xbe]).unwrap();
        drop(file);

        let (store, report) = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(report.truncated_bytes, 7);
        assert_eq!(fs::metadata(&log).unwrap().len(), good_len);
        assert_eq!(store.get(1).unwrap().unwrap().payload, b"kept");
        // The store is appendable again after repair.
        store.append(2, b"after", None).unwrap();
        drop(store);
        let (_, report) = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_truncates_everything_after() {
        let dir = temp_dir("corrupt");
        let (store, _) = Store::open(StoreConfig::new(&dir)).unwrap();
        store.append(1, b"first", None).unwrap();
        let first_len = store.log_bytes();
        store.append(2, b"second", None).unwrap();
        store.append(3, b"third", None).unwrap();
        drop(store);

        // Flip one payload byte of the second record.
        let log = dir.join(LOG_FILE);
        let mut bytes = fs::read(&log).unwrap();
        let victim = first_len as usize + HEADER_BYTES + BODY_PREAMBLE;
        bytes[victim] ^= 0xFF;
        fs::write(&log, &bytes).unwrap();

        let (store, report) = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(report.live, 1);
        assert!(report.truncated_bytes > 0);
        assert!(store.contains(1));
        assert!(!store.contains(2));
        assert!(!store.contains(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sidecar_roundtrip_and_degrade() {
        let dir = temp_dir("sidecar");
        let (store, _) = Store::open(StoreConfig::new(&dir)).unwrap();
        let proof = vec![0xAB; 4096];
        let seq = store.append(7, b"verdict", Some(&proof)).unwrap();
        let record = store.get(7).unwrap().unwrap();
        assert_eq!(record.sidecar.as_deref(), Some(proof.as_slice()));
        drop(store);

        let (store, _) = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(
            store.get(7).unwrap().unwrap().sidecar.as_deref(),
            Some(proof.as_slice())
        );
        // Losing the sidecar degrades the record, not the read.
        fs::remove_file(dir.join(ARTIFACT_DIR).join(format!("{seq:016x}.bin"))).unwrap();
        let record = store.get(7).unwrap().unwrap();
        assert_eq!(record.payload, b"verdict");
        assert_eq!(record.sidecar, None);
        assert_eq!(store.metrics.sidecar_missing.get(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_poisons_until_reopen() {
        let dir = temp_dir("poison");
        let fp = Arc::new(Failpoints::new());
        let mut config = StoreConfig::new(&dir);
        config.failpoints = Some(fp.clone());
        let (store, _) = Store::open(config).unwrap();
        store.append(1, b"good", None).unwrap();
        fp.arm("store.append.body", 0, FailAction::ShortWrite(5));
        assert!(store.append(2, b"torn", None).is_err());
        let err = store.append(3, b"refused", None).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert!(!store.contains(2), "failed append must not be advertised");
        drop(store);

        let (store, report) = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(report.truncated_bytes, 5);
        assert!(store.contains(1));
        store.append(3, b"works again", None).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_superseded_records_and_orphan_sidecars() {
        let dir = temp_dir("compact");
        let (store, _) = Store::open(StoreConfig::new(&dir)).unwrap();
        for round in 0..10u8 {
            for key in 0..5u128 {
                store.append(key, &[round; 32], Some(&[round; 64])).unwrap();
            }
        }
        let before = store.log_bytes();
        let report = store.compact().unwrap();
        assert_eq!(report.live, 5);
        assert!(report.reclaimed_bytes > 0);
        assert_eq!(report.removed_sidecars, 45);
        assert!(store.log_bytes() < before);
        for key in 0..5u128 {
            let record = store.get(key).unwrap().unwrap();
            assert_eq!(record.payload, [9u8; 32]);
            assert_eq!(record.sidecar.as_deref(), Some([9u8; 64].as_slice()));
        }
        // Post-compaction appends and reopen both still work.
        store.append(99, b"fresh", None).unwrap();
        drop(store);
        let (store, report) = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.live, 6);
        assert_eq!(store.get(99).unwrap().unwrap().payload, b"fresh");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_records_replay_in_append_order() {
        let dir = temp_dir("replay");
        let (store, _) = Store::open(StoreConfig::new(&dir)).unwrap();
        store.append(5, b"a", None).unwrap();
        store.append(6, b"b", None).unwrap();
        store.append(5, b"c", None).unwrap();
        let records = store.live_records().unwrap();
        assert_eq!(
            records
                .iter()
                .map(|r| (r.key, r.payload.clone()))
                .collect::<Vec<_>>(),
            vec![(6, b"b".to_vec()), (5, b"c".to_vec())]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("os"), Ok(FsyncPolicy::Os));
        assert_eq!(FsyncPolicy::parse("every-64"), Ok(FsyncPolicy::EveryN(64)));
        assert!(FsyncPolicy::parse("every-0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::EveryN(8).to_string(), "every-8");
    }
}
