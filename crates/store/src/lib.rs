//! `velv_store` — a crash-safe persistent record store for verification
//! verdicts, plus the fault-injection facility used to prove it.
//!
//! The serving layer (`velv_serve`) keys every decided verdict by the
//! 128-bit structural fingerprint of its problem; this crate persists those
//! `(key, payload, artifact)` triples across process death:
//!
//! * [`Store`]: an append-only record log with length-prefixed,
//!   CRC-32-checksummed entries and an in-memory index rebuilt on open by a
//!   recovery scan that truncates torn tails and corrupt suffixes (see the
//!   [`log`] module docs for the on-disk format and crash contract);
//! * [`FsyncPolicy`]: the durability dial — `always` (an acked append
//!   survives power loss), `every-n` (bounded loss window), `os` (page
//!   cache decides);
//! * sidecar spill: large artifacts (DRAT proofs) live in per-record
//!   sidecar files referenced from log records, written before the record
//!   that points at them, with missing sidecars degrading reads instead of
//!   failing them;
//! * [`Store::compact`]: rewrites live records into a fresh log swapped in
//!   by rename, reaping superseded entries and orphaned sidecars;
//! * [`failpoint`]: deterministic, seed-replayable fault injection (short
//!   writes, IO errors, delays, dropped frames, panics) at named sites —
//!   the engine of the crash-torture suites here and the wire/worker fault
//!   tests in `velv_serve`.
//!
//! The crate depends only on `velv_obs` (metrics) and the standard library.
//!
//! # Example
//!
//! ```
//! use velv_store::{Store, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("velv_store_doc_{}", std::process::id()));
//! let (store, report) = Store::open(StoreConfig::new(&dir)).unwrap();
//! store.append(0xfeed_u128, b"verdict bytes", Some(b"proof bytes")).unwrap();
//! assert_eq!(report.truncated_bytes, 0);
//!
//! // Reopen (as after a crash): the record survives.
//! drop(store);
//! let (store, _) = Store::open(StoreConfig::new(&dir)).unwrap();
//! let record = store.get(0xfeed_u128).unwrap().unwrap();
//! assert_eq!(record.payload, b"verdict bytes");
//! assert_eq!(record.sidecar.as_deref(), Some(b"proof bytes".as_slice()));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod crc;
pub mod failpoint;
pub mod log;

pub use crc::crc32;
pub use failpoint::{FailAction, Failpoints};
pub use log::{CompactionReport, FsyncPolicy, Record, RecoveryReport, Store, StoreConfig};
