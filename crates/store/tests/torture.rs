//! Seeded crash-torture suite: append under load, crash at a seeded
//! failpoint (including mid-record short writes), reopen, and assert that
//! every acked append is present and every torn tail was cleanly truncated.
//!
//! Under `fsync=always` an `Ok` from `Store::append` is the durability ack:
//! after any later crash the record must be recovered bit-for-bit.  The
//! failpoint plan for each cycle is a pure function of the cycle seed, so a
//! failing cycle replays from the seed printed in the panic message.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use velv_sat::rng::SmallRng;
use velv_store::{FailAction, Failpoints, FsyncPolicy, Store, StoreConfig};

/// The IO sites a crash can be injected at, covering record body writes
/// (mid-record tears), sidecar writes, and both fsync points.
const CRASH_SITES: &[&str] = &[
    "store.append.body",
    "store.append.sidecar",
    "store.append.fsync",
    "store.append.sidecar.fsync",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("velv_store_torture_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn payload_for(rng: &mut SmallRng) -> Vec<u8> {
    let len = rng.gen_range(1..200);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn kill_torture_fifty_seeded_crash_cycles() {
    let dir = temp_dir("cycles");
    // Acked appends only: key -> (payload, sidecar).  This is the set the
    // store owes us after any crash.
    let mut acked: HashMap<u128, (Vec<u8>, Option<Vec<u8>>)> = HashMap::new();

    const CYCLES: u64 = 60;
    for cycle in 0..CYCLES {
        let seed = 0xD1CE_0000 + cycle;
        let mut rng = SmallRng::seed_from_u64(seed);
        let failpoints = Arc::new(Failpoints::new());
        let plan = failpoints.arm_seeded(seed, CRASH_SITES, 12);

        let mut config = StoreConfig::new(&dir);
        config.fsync = FsyncPolicy::Always;
        config.failpoints = Some(failpoints);
        let (store, report) = Store::open(config)
            .unwrap_or_else(|e| panic!("cycle {cycle} (seed {seed}): reopen failed: {e}"));

        // Recovery contract: everything acked before the last crash is here.
        for (key, (payload, sidecar)) in &acked {
            let record = store
                .get(*key)
                .unwrap_or_else(|e| panic!("cycle {cycle} (seed {seed}): read failed: {e}"))
                .unwrap_or_else(|| {
                    panic!("cycle {cycle} (seed {seed}): acked key {key:#x} lost (plan {plan:?})")
                });
            assert_eq!(
                &record.payload, payload,
                "cycle {cycle} (seed {seed}): payload of {key:#x} corrupted"
            );
            if let Some(expect) = sidecar {
                assert_eq!(
                    record.sidecar.as_ref(),
                    Some(expect),
                    "cycle {cycle} (seed {seed}): sidecar of {key:#x} lost"
                );
            }
        }
        // Durability is one-directional: acked ⇒ recovered.  An append
        // whose body landed but whose fsync "crashed" may legitimately
        // survive un-acked, so the live set can only be a superset.
        assert!(
            report.live as usize >= acked.len(),
            "cycle {cycle} (seed {seed}): live set smaller than the ack set"
        );

        // Append under load until the armed failpoint crashes us (or the
        // burst completes without hitting it).
        for _ in 0..20 {
            let key = rng.next_u64() as u128 | ((cycle as u128) << 64);
            let payload = payload_for(&mut rng);
            let sidecar = if rng.gen_bool(0.3) {
                Some(payload_for(&mut rng))
            } else {
                None
            };
            match store.append(key, &payload, sidecar.as_deref()) {
                Ok(_) => {
                    acked.insert(key, (payload, sidecar));
                }
                Err(_) => break, // crash point reached; kill the process image
            }
        }
        drop(store); // kill -9: no shutdown path, no extra flush
    }

    // Final reopen repairs any tail torn by the last cycle's crash; a
    // second reopen must then find a perfectly clean log.
    let (store, _) = Store::open(StoreConfig::new(&dir)).unwrap();
    assert!(store.len() >= acked.len());
    for (key, (payload, _)) in &acked {
        assert_eq!(&store.get(*key).unwrap().unwrap().payload, payload);
    }
    drop(store);
    let (_, report) = Store::open(StoreConfig::new(&dir)).unwrap();
    assert_eq!(report.truncated_bytes, 0, "recovery left a torn tail");
    assert!(acked.len() > 100, "torture made too little progress");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_exactly_mid_record_leaves_longest_valid_prefix() {
    // Directed variant of the seeded suite: tear the record body at every
    // prefix length across a few appends and check the invariant that
    // recovery keeps exactly the records acked before the tear.
    for torn_bytes in [0usize, 1, 4, 7, 8, 9, 20, 24, 25, 30] {
        let dir = temp_dir(&format!("midrec_{torn_bytes}"));
        let failpoints = Arc::new(Failpoints::new());
        let mut config = StoreConfig::new(&dir);
        config.failpoints = Some(failpoints.clone());
        let (store, _) = Store::open(config).unwrap();
        store.append(1, b"alpha", None).unwrap();
        store.append(2, b"beta", None).unwrap();
        failpoints.arm("store.append.body", 0, FailAction::ShortWrite(torn_bytes));
        assert!(store.append(3, b"gamma-torn", None).is_err());
        drop(store);

        let (store, report) = Store::open(StoreConfig::new(&dir)).unwrap();
        assert_eq!(report.records, 2, "torn_bytes={torn_bytes}");
        assert_eq!(report.truncated_bytes, torn_bytes as u64);
        assert_eq!(store.get(1).unwrap().unwrap().payload, b"alpha");
        assert_eq!(store.get(2).unwrap().unwrap().payload, b"beta");
        assert!(!store.contains(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn every_n_policy_bounds_loss_not_correctness() {
    // Under fsync=every-n a crash may lose recent acks, but recovery must
    // still produce a valid prefix of the append history: no corruption,
    // no reordering, no resurrection of superseded values.
    let dir = temp_dir("everyn");
    let mut history: Vec<(u128, Vec<u8>)> = Vec::new();
    let mut rng = SmallRng::seed_from_u64(77);
    let mut config = StoreConfig::new(&dir);
    config.fsync = FsyncPolicy::EveryN(8);
    let (store, _) = Store::open(config).unwrap();
    for _ in 0..100 {
        let key = rng.gen_range(0..12) as u128;
        let payload = payload_for(&mut rng);
        store.append(key, &payload, None).unwrap();
        history.push((key, payload));
    }
    drop(store);

    let (store, report) = Store::open(StoreConfig::new(&dir)).unwrap();
    assert_eq!(report.truncated_bytes, 0);
    let recovered = report.records as usize;
    assert!(recovered <= history.len());
    // The recovered state must equal replaying exactly the first
    // `recovered` appends of the history.
    let mut expect: HashMap<u128, Vec<u8>> = HashMap::new();
    for (key, payload) in &history[..recovered] {
        expect.insert(*key, payload.clone());
    }
    assert_eq!(store.len(), expect.len());
    for (key, payload) in &expect {
        assert_eq!(&store.get(*key).unwrap().unwrap().payload, payload);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
