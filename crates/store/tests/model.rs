//! Model-based test: a seeded stream of random store operations (append,
//! overwrite, get, compact, sync, reopen) checked op-for-op against an
//! in-memory reference map.  With no faults injected, the store must behave
//! exactly like `HashMap<u128, (payload, sidecar)>` with persistence.

use std::collections::HashMap;
use std::path::PathBuf;

use velv_sat::rng::SmallRng;
use velv_store::{FsyncPolicy, Store, StoreConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("velv_store_model_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type Reference = HashMap<u128, (Vec<u8>, Option<Vec<u8>>)>;

fn check_agreement(store: &Store, reference: &Reference, context: &str) {
    assert_eq!(store.len(), reference.len(), "{context}: size mismatch");
    for (key, (payload, sidecar)) in reference {
        let record = store
            .get(*key)
            .unwrap_or_else(|e| panic!("{context}: read of {key:#x} failed: {e}"))
            .unwrap_or_else(|| panic!("{context}: {key:#x} missing"));
        assert_eq!(&record.payload, payload, "{context}: payload of {key:#x}");
        assert_eq!(
            record.sidecar.as_ref(),
            sidecar.as_ref(),
            "{context}: sidecar of {key:#x}"
        );
    }
}

#[test]
fn store_matches_reference_map_across_ops_and_reopens() {
    for seed in [11u64, 2024, 0xFACE] {
        let dir = temp_dir(&format!("s{seed}"));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut reference: Reference = HashMap::new();

        let open = |fsync: FsyncPolicy| {
            let mut config = StoreConfig::new(&dir);
            config.fsync = fsync;
            Store::open(config).expect("open")
        };
        let (mut store, _) = open(FsyncPolicy::EveryN(4));

        for op in 0..400u32 {
            let context = format!("seed {seed} op {op}");
            match rng.gen_range(0..100) {
                // Append (fresh or overwriting) — the dominant operation.
                0..=59 => {
                    let key = rng.gen_range(0..40) as u128;
                    let payload: Vec<u8> = (0..rng.gen_range(0..64))
                        .map(|_| rng.next_u64() as u8)
                        .collect();
                    let sidecar = if rng.gen_bool(0.25) {
                        Some(
                            (0..rng.gen_range(1..512))
                                .map(|_| rng.next_u64() as u8)
                                .collect::<Vec<u8>>(),
                        )
                    } else {
                        None
                    };
                    store.append(key, &payload, sidecar.as_deref()).unwrap();
                    reference.insert(key, (payload, sidecar));
                }
                // Point read of a (maybe absent) key.
                60..=79 => {
                    let key = rng.gen_range(0..50) as u128;
                    let got = store.get(key).unwrap();
                    match reference.get(&key) {
                        None => assert!(got.is_none(), "{context}: phantom {key:#x}"),
                        Some((payload, sidecar)) => {
                            let record = got.unwrap_or_else(|| panic!("{context}: lost {key:#x}"));
                            assert_eq!(&record.payload, payload, "{context}");
                            assert_eq!(record.sidecar.as_ref(), sidecar.as_ref(), "{context}");
                        }
                    }
                }
                // Compact.
                80..=86 => {
                    let report = store.compact().unwrap();
                    assert_eq!(report.live as usize, reference.len(), "{context}");
                    check_agreement(&store, &reference, &context);
                }
                // Forced sync.
                87..=89 => store.sync().unwrap(),
                // Reopen (graceful restart) under a random fsync policy.
                _ => {
                    store.sync().unwrap();
                    drop(store);
                    let fsync = match rng.gen_range(0..3) {
                        0 => FsyncPolicy::Always,
                        1 => FsyncPolicy::EveryN(rng.gen_range(1..16) as u64),
                        _ => FsyncPolicy::Os,
                    };
                    let (reopened, report) = open(fsync);
                    assert_eq!(report.truncated_bytes, 0, "{context}: clean log torn");
                    store = reopened;
                    check_agreement(&store, &reference, &context);
                }
            }
        }

        check_agreement(&store, &reference, &format!("seed {seed} final"));
        // Full replay agrees with the reference as well.
        let records = store.live_records().unwrap();
        assert_eq!(records.len(), reference.len());
        for record in records {
            let (payload, sidecar) = &reference[&record.key];
            assert_eq!(&record.payload, payload);
            assert_eq!(record.sidecar.as_ref(), sidecar.as_ref());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
