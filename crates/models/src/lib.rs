//! The benchmark microprocessors of the paper, modeled at the term level.
//!
//! | Paper benchmark | Module | Notes |
//! |---|---|---|
//! | 1×DLX-C | [`dlx`] with [`dlx::DlxConfig::single_issue`] | in-order pipeline, 7 instruction classes, forwarding, load interlock, branch squash |
//! | 2×DLX-CC | [`dlx`] with [`dlx::DlxConfig::dual_issue`] | dual in-order issue with conservative co-issue rules |
//! | 2×DLX-CC-MC-EX-BP | [`dlx`] with [`dlx::DlxConfig::dual_issue_full`] | adds exceptions + EPC and branch/jump prediction |
//! | 9VLIW-MC-BP | [`vliw`] with [`vliw::VliwConfig::base`] | 9-slot packet, predication, CFM register remapping, branch prediction |
//! | 9VLIW-MC-BP-EX | [`vliw`] with [`vliw::VliwConfig::with_exceptions`] | adds exceptions + EPC |
//! | OOO superscalar (2–6 wide) | [`ooo`] | out-of-order retirement requiring transitivity of equality |
//!
//! Each implementation module also provides the matching single-cycle
//! specification ([`dlx::DlxSpecification`], [`vliw::VliwSpecification`],
//! [`ooo::OooSpecification`]) and a deterministic bug catalog reproducing the
//! error classes the paper injected (omitted gate inputs, wrong input indices,
//! wrong gate types, missing speculative-state repair).
//!
//! The models are smaller than the authors' original designs (fewer pipeline
//! stages, multicycle functional units absorbed into the uninterpreted-function
//! abstraction); `DESIGN.md` lists every such substitution.
//!
//! # Example
//!
//! ```
//! use velv_models::dlx::{Dlx, DlxConfig, DlxSpecification};
//! use velv_hdl::Processor;
//!
//! let implementation = Dlx::correct(DlxConfig::single_issue());
//! let spec = DlxSpecification::new(DlxConfig::single_issue());
//! assert_eq!(implementation.arch_state(), spec.arch_state());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dlx;
pub mod ooo;
pub mod vliw;

/// Convenience aliases for the single-issue 1×DLX-C benchmark, used by the
/// quickstart example and the experiment harness.
pub mod dlx1 {
    use super::dlx;

    /// The 1×DLX-C implementation.
    pub struct Dlx1Implementation;

    impl Dlx1Implementation {
        /// The correct single-issue pipeline.
        pub fn correct() -> dlx::Dlx {
            dlx::Dlx::correct(dlx::DlxConfig::single_issue())
        }
    }

    /// The 1×DLX-C specification.
    pub struct DlxSpecification;

    impl DlxSpecification {
        /// The single-cycle specification of the DLX ISA.
        #[allow(clippy::new_ret_no_self)]
        pub fn new() -> dlx::DlxSpecification {
            dlx::DlxSpecification::new(dlx::DlxConfig::single_issue())
        }
    }
}
