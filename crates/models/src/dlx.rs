//! The DLX benchmark pipelines: 1×DLX-C, 2×DLX-CC and 2×DLX-CC-EX-BP.
//!
//! The implementation is an in-order pipeline with a combinational
//! fetch/decode stage followed by Execute, Memory and Write-Back latches
//! (the paper's five-stage 1×DLX-C reduced by one latch stage — fetch and
//! decode are merged; every hazard class of the original is still present):
//!
//! * seven instruction classes: register–register ALU, register–immediate ALU,
//!   loads, stores, branches, jumps and nops,
//! * register-file read in the decode stage with *write-before-read* semantics,
//! * forwarding into the Execute stage from the Memory and Write-Back latches,
//! * a load interlock that stalls a dependent instruction behind a load,
//! * branches and jumps resolved in Execute with squashing of the speculatively
//!   fetched instruction (optionally guided by a branch predictor),
//! * optional precise exceptions with an EPC register,
//! * a dual-issue variant that fetches two sequential instructions per cycle
//!   with conservative co-issue rules (the second instruction is stalled on a
//!   data dependency on the first or when the first is a load, branch or jump).
//!
//! Multicycle functional units are absorbed into the uninterpreted-function
//! abstraction (see the substitution list in `DESIGN.md`).

use velv_eufm::{Context, FormulaId, TermId};
use velv_hdl::components::conditional_write;
use velv_hdl::{InstrFields, Processor, StateElement, SymbolicState};

/// Configuration of a DLX benchmark variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DlxConfig {
    /// Number of instructions fetched per cycle (1 or 2).
    pub issue_width: usize,
    /// Model precise ALU exceptions and the EPC register.
    pub exceptions: bool,
    /// Model branch/jump prediction with misprediction recovery.
    pub branch_prediction: bool,
}

impl DlxConfig {
    /// 1×DLX-C: single-issue pipeline.
    pub fn single_issue() -> Self {
        DlxConfig {
            issue_width: 1,
            exceptions: false,
            branch_prediction: false,
        }
    }

    /// 2×DLX-CC: dual-issue superscalar.
    pub fn dual_issue() -> Self {
        DlxConfig {
            issue_width: 2,
            exceptions: false,
            branch_prediction: false,
        }
    }

    /// 2×DLX-CC-MC-EX-BP: dual issue with exceptions and branch prediction
    /// (multicycle units are absorbed into the UF abstraction).
    pub fn dual_issue_full() -> Self {
        DlxConfig {
            issue_width: 2,
            exceptions: true,
            branch_prediction: true,
        }
    }

    /// The design name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match (self.issue_width, self.exceptions, self.branch_prediction) {
            (1, false, false) => "1xDLX-C",
            (1, _, _) => "1xDLX-C-EX-BP",
            (2, false, false) => "2xDLX-CC",
            _ => "2xDLX-CC-MC-EX-BP",
        }
    }
}

/// The error classes injected into the DLX designs (Section 3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DlxBug {
    /// Forwarding condition omits the producer's valid bit (omitted gate input).
    ForwardingIgnoresValid {
        /// Forwarding source: 0 = Memory stage, 1 = Write-Back stage.
        from_stage: usize,
        /// Consumer operand: 0 = first, 1 = second.
        operand: usize,
        /// Consumer pipeline slot.
        slot: usize,
    },
    /// Forwarding compares the wrong source register (incorrect input index).
    ForwardingWrongOperand {
        /// Forwarding source stage.
        from_stage: usize,
        /// Consumer pipeline slot.
        slot: usize,
    },
    /// One forwarding path is missing entirely (omitted input).
    ForwardingPathMissing {
        /// Forwarding source stage.
        from_stage: usize,
        /// Consumer operand.
        operand: usize,
    },
    /// The load interlock ignores one of the source operands.
    LoadInterlockIgnoresOperand {
        /// The operand whose dependency is not checked.
        operand: usize,
        /// Consumer slot in decode.
        slot: usize,
    },
    /// The load interlock is missing for one decode slot.
    LoadInterlockMissing {
        /// Consumer slot in decode.
        slot: usize,
    },
    /// Speculatively fetched instructions are not squashed on a taken branch /
    /// misprediction (lack of a speculative-update repair mechanism).
    NoSquashOnTakenBranch {
        /// Offending execute slot.
        slot: usize,
    },
    /// The program counter is not redirected when a branch resolves.
    PcNotRedirected {
        /// Offending execute slot.
        slot: usize,
    },
    /// The branch-taken condition uses AND instead of OR (incorrect gate type).
    TakenUsesAndInsteadOfOr {
        /// Offending execute slot.
        slot: usize,
    },
    /// The register file write-back stores the memory address instead of the
    /// load result (incorrect input to a memory).
    WriteBackWrongData {
        /// Offending slot.
        slot: usize,
    },
    /// The destination register is taken from the wrong instruction field.
    WrongDestinationField {
        /// Offending slot.
        slot: usize,
    },
    /// The store writes the immediate-muxed operand instead of the register value.
    StoreDataWrongInput {
        /// Offending slot.
        slot: usize,
    },
    /// The register file is written even when the instruction raised an exception.
    WriteIgnoresException {
        /// Offending slot.
        slot: usize,
    },
    /// The EPC is not saved when an exception is raised.
    EpcNotSaved {
        /// Offending slot.
        slot: usize,
    },
    /// The second decode slot ignores its read-after-write dependency on the first.
    CoIssueIgnoresRaw {
        /// The operand whose dependency is not checked.
        operand: usize,
    },
    /// The second decode slot is issued even behind a branch or jump.
    CoIssueIgnoresControl,
}

/// Returns the deterministic bug catalog for a configuration.  The catalog has
/// at least 100 entries for the dual-issue configurations (the paper's
/// SSS-SAT.1.0 suite size); the single-issue catalog is proportionally smaller.
pub fn bug_catalog(config: DlxConfig) -> Vec<DlxBug> {
    let mut bugs = Vec::new();
    let slots = config.issue_width;
    for slot in 0..slots {
        for from_stage in 0..2 {
            for operand in 0..2 {
                bugs.push(DlxBug::ForwardingIgnoresValid {
                    from_stage,
                    operand,
                    slot,
                });
            }
            bugs.push(DlxBug::ForwardingWrongOperand { from_stage, slot });
        }
        for operand in 0..2 {
            bugs.push(DlxBug::LoadInterlockIgnoresOperand { operand, slot });
        }
        bugs.push(DlxBug::LoadInterlockMissing { slot });
        bugs.push(DlxBug::NoSquashOnTakenBranch { slot });
        bugs.push(DlxBug::PcNotRedirected { slot });
        bugs.push(DlxBug::TakenUsesAndInsteadOfOr { slot });
        bugs.push(DlxBug::WriteBackWrongData { slot });
        bugs.push(DlxBug::WrongDestinationField { slot });
        bugs.push(DlxBug::StoreDataWrongInput { slot });
        if config.exceptions {
            bugs.push(DlxBug::WriteIgnoresException { slot });
            bugs.push(DlxBug::EpcNotSaved { slot });
        }
    }
    for from_stage in 0..2 {
        for operand in 0..2 {
            bugs.push(DlxBug::ForwardingPathMissing {
                from_stage,
                operand,
            });
        }
    }
    if config.issue_width > 1 {
        bugs.push(DlxBug::CoIssueIgnoresRaw { operand: 0 });
        bugs.push(DlxBug::CoIssueIgnoresRaw { operand: 1 });
        bugs.push(DlxBug::CoIssueIgnoresControl);
    }
    // Pad the catalog to (at least) 100 entries for the dual-issue suites by
    // cycling through the base classes again with different parameters — the
    // paper's suites also contain several variants of the same error class.
    if config.issue_width > 1 {
        let mut extra = 0usize;
        while bugs.len() < 100 {
            let slot = extra % slots;
            let from_stage = (extra / slots) % 2;
            let operand = (extra / (2 * slots)) % 2;
            bugs.push(match extra % 5 {
                0 => DlxBug::ForwardingIgnoresValid {
                    from_stage,
                    operand,
                    slot,
                },
                1 => DlxBug::ForwardingWrongOperand { from_stage, slot },
                2 => DlxBug::LoadInterlockIgnoresOperand { operand, slot },
                3 => DlxBug::NoSquashOnTakenBranch { slot },
                _ => DlxBug::WriteBackWrongData { slot },
            });
            extra += 1;
        }
    }
    bugs
}

/// The DLX pipelined implementation.
#[derive(Clone, Debug)]
pub struct Dlx {
    config: DlxConfig,
    bug: Option<DlxBug>,
    name: String,
}

impl Dlx {
    /// The correct implementation.
    pub fn correct(config: DlxConfig) -> Self {
        Dlx {
            config,
            bug: None,
            name: config.name().to_owned(),
        }
    }

    /// An implementation with an injected bug.
    pub fn buggy(config: DlxConfig, bug: DlxBug) -> Self {
        Dlx {
            config,
            bug: Some(bug),
            name: format!("{}-buggy", config.name()),
        }
    }

    /// The configuration of this design.
    pub fn config(&self) -> DlxConfig {
        self.config
    }

    /// The injected bug, if any.
    pub fn bug(&self) -> Option<DlxBug> {
        self.bug
    }

    fn has(&self, bug: DlxBug) -> bool {
        self.bug == Some(bug)
    }

    fn arch_elements(config: DlxConfig) -> Vec<StateElement> {
        let mut elements = vec![
            StateElement::arch_term("pc"),
            StateElement::arch_memory("rf"),
            StateElement::arch_memory("dmem"),
        ];
        if config.exceptions {
            elements.push(StateElement::arch_term("epc"));
        }
        elements
    }
}

/// Fields carried by an Execute-stage slot.
struct ExSlot {
    valid: FormulaId,
    pc: TermId,
    op: TermId,
    src1: TermId,
    src2: TermId,
    dest: TermId,
    imm: TermId,
    a: TermId,
    b: TermId,
    is_load: FormulaId,
    is_store: FormulaId,
    is_branch: FormulaId,
    is_jump: FormulaId,
    writes_rf: FormulaId,
    uses_imm: FormulaId,
    pred_taken: FormulaId,
    pred_target: TermId,
}

struct MemSlot {
    valid: FormulaId,
    dest: TermId,
    alu_out: TermId,
    store_data: TermId,
    is_load: FormulaId,
    is_store: FormulaId,
    writes_rf: FormulaId,
}

struct WbSlot {
    valid: FormulaId,
    dest: TermId,
    result: TermId,
    writes_rf: FormulaId,
}

fn ex_field(slot: usize, field: &str) -> String {
    format!("ex.{slot}.{field}")
}

fn mem_field(slot: usize, field: &str) -> String {
    format!("mem.{slot}.{field}")
}

fn wb_field(slot: usize, field: &str) -> String {
    format!("wb.{slot}.{field}")
}

impl Dlx {
    fn read_ex_slot(&self, state: &SymbolicState, slot: usize) -> ExSlot {
        ExSlot {
            valid: state.formula(&ex_field(slot, "valid")),
            pc: state.term(&ex_field(slot, "pc")),
            op: state.term(&ex_field(slot, "op")),
            src1: state.term(&ex_field(slot, "src1")),
            src2: state.term(&ex_field(slot, "src2")),
            dest: state.term(&ex_field(slot, "dest")),
            imm: state.term(&ex_field(slot, "imm")),
            a: state.term(&ex_field(slot, "a")),
            b: state.term(&ex_field(slot, "b")),
            is_load: state.formula(&ex_field(slot, "is_load")),
            is_store: state.formula(&ex_field(slot, "is_store")),
            is_branch: state.formula(&ex_field(slot, "is_branch")),
            is_jump: state.formula(&ex_field(slot, "is_jump")),
            writes_rf: state.formula(&ex_field(slot, "writes_rf")),
            uses_imm: state.formula(&ex_field(slot, "uses_imm")),
            pred_taken: state.formula(&ex_field(slot, "pred_taken")),
            pred_target: state.term(&ex_field(slot, "pred_target")),
        }
    }

    fn read_mem_slot(&self, state: &SymbolicState, slot: usize) -> MemSlot {
        MemSlot {
            valid: state.formula(&mem_field(slot, "valid")),
            dest: state.term(&mem_field(slot, "dest")),
            alu_out: state.term(&mem_field(slot, "alu_out")),
            store_data: state.term(&mem_field(slot, "store_data")),
            is_load: state.formula(&mem_field(slot, "is_load")),
            is_store: state.formula(&mem_field(slot, "is_store")),
            writes_rf: state.formula(&mem_field(slot, "writes_rf")),
        }
    }

    fn read_wb_slot(&self, state: &SymbolicState, slot: usize) -> WbSlot {
        WbSlot {
            valid: state.formula(&wb_field(slot, "valid")),
            dest: state.term(&wb_field(slot, "dest")),
            result: state.term(&wb_field(slot, "result")),
            writes_rf: state.formula(&wb_field(slot, "writes_rf")),
        }
    }

    /// Forwarding sources for an Execute-stage consumer, in priority order
    /// (closest preceding instruction first).
    fn forwarding_sources(
        &self,
        ctx: &mut Context,
        mem_slots: &[MemSlot],
        wb_slots: &[WbSlot],
        consumer_slot: usize,
        operand: usize,
    ) -> Vec<(FormulaId, TermId, TermId)> {
        let mut sources = Vec::new();
        // Memory stage (stage index 0): younger slot first.
        for (s, mem) in mem_slots.iter().enumerate().rev() {
            if self.has(DlxBug::ForwardingPathMissing {
                from_stage: 0,
                operand,
            }) && s == 0
            {
                continue;
            }
            let ignore_valid = self.has(DlxBug::ForwardingIgnoresValid {
                from_stage: 0,
                operand,
                slot: consumer_slot,
            });
            let not_load = ctx.not(mem.is_load);
            let mut active = ctx.and(mem.writes_rf, not_load);
            if !ignore_valid {
                active = ctx.and(active, mem.valid);
            }
            sources.push((active, mem.dest, mem.alu_out));
        }
        // Write-back stage (stage index 1): younger slot first.
        for (s, wb) in wb_slots.iter().enumerate().rev() {
            if self.has(DlxBug::ForwardingPathMissing {
                from_stage: 1,
                operand,
            }) && s == 0
            {
                continue;
            }
            let ignore_valid = self.has(DlxBug::ForwardingIgnoresValid {
                from_stage: 1,
                operand,
                slot: consumer_slot,
            });
            let active = if ignore_valid {
                wb.writes_rf
            } else {
                ctx.and(wb.valid, wb.writes_rf)
            };
            sources.push((active, wb.dest, wb.result));
        }
        sources
    }
}

impl Processor for Dlx {
    fn name(&self) -> &str {
        &self.name
    }

    fn state_elements(&self) -> Vec<StateElement> {
        let mut elements = Dlx::arch_elements(self.config);
        for slot in 0..self.config.issue_width {
            elements.push(StateElement::pipe_flag(&ex_field(slot, "valid")));
            for field in [
                "pc",
                "op",
                "src1",
                "src2",
                "dest",
                "imm",
                "a",
                "b",
                "pred_target",
            ] {
                elements.push(StateElement::pipe_term(&ex_field(slot, field)));
            }
            for field in [
                "is_load",
                "is_store",
                "is_branch",
                "is_jump",
                "writes_rf",
                "uses_imm",
                "pred_taken",
            ] {
                elements.push(StateElement::pipe_flag(&ex_field(slot, field)));
            }
            elements.push(StateElement::pipe_flag(&mem_field(slot, "valid")));
            for field in ["dest", "alu_out", "store_data"] {
                elements.push(StateElement::pipe_term(&mem_field(slot, field)));
            }
            for field in ["is_load", "is_store", "writes_rf"] {
                elements.push(StateElement::pipe_flag(&mem_field(slot, field)));
            }
            elements.push(StateElement::pipe_flag(&wb_field(slot, "valid")));
            for field in ["dest", "result"] {
                elements.push(StateElement::pipe_term(&wb_field(slot, field)));
            }
            elements.push(StateElement::pipe_flag(&wb_field(slot, "writes_rf")));
        }
        elements
    }

    fn fetch_width(&self) -> usize {
        self.config.issue_width
    }

    fn flush_cycles(&self) -> usize {
        3
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let width = self.config.issue_width;
        let pc = state.term("pc");
        let rf = state.term("rf");
        let dmem = state.term("dmem");
        let epc = if self.config.exceptions {
            Some(state.term("epc"))
        } else {
            None
        };

        let ex_slots: Vec<ExSlot> = (0..width).map(|s| self.read_ex_slot(state, s)).collect();
        let mem_slots: Vec<MemSlot> = (0..width).map(|s| self.read_mem_slot(state, s)).collect();
        let wb_slots: Vec<WbSlot> = (0..width).map(|s| self.read_wb_slot(state, s)).collect();

        let mut next = SymbolicState::new();

        // ------------------------------------------------------------------
        // Write-back stage: retire into the register file (program order).
        // ------------------------------------------------------------------
        let mut rf_after_wb = rf;
        for wb in &wb_slots {
            let enable = ctx.and(wb.valid, wb.writes_rf);
            rf_after_wb = conditional_write(ctx, rf_after_wb, enable, wb.dest, wb.result);
        }

        // ------------------------------------------------------------------
        // Memory stage: data-memory access, select the write-back result.
        // ------------------------------------------------------------------
        let mut dmem_next = dmem;
        for (s, mem) in mem_slots.iter().enumerate() {
            let store_enable = ctx.and(mem.valid, mem.is_store);
            dmem_next =
                conditional_write(ctx, dmem_next, store_enable, mem.alu_out, mem.store_data);
            // Loads observe stores of older slots processed above.
            let load_value = ctx.read(dmem_next, mem.alu_out);
            let result = if self.has(DlxBug::WriteBackWrongData { slot: s }) {
                mem.alu_out
            } else {
                ctx.ite_term(mem.is_load, load_value, mem.alu_out)
            };
            next.set_formula(&wb_field(s, "valid"), mem.valid);
            next.set_term(&wb_field(s, "dest"), mem.dest);
            next.set_term(&wb_field(s, "result"), result);
            next.set_formula(&wb_field(s, "writes_rf"), mem.writes_rf);
        }
        next.set_term("dmem", dmem_next);

        // ------------------------------------------------------------------
        // Execute stage: forwarding, ALU, branch resolution, exceptions.
        // ------------------------------------------------------------------
        let exc_vector = ctx.term_var("exc_vector");
        let mut squash_new = ctx.false_id();
        let mut epc_next = epc;
        let mut older_exception = ctx.false_id();

        for (s, ex) in ex_slots.iter().enumerate() {
            // Effective validity: an older slot's exception kills this one.
            let not_older_exc = ctx.not(older_exception);
            let valid_eff = ctx.and(ex.valid, not_older_exc);

            // Operand forwarding.
            let src1_for_fwd = ex.src1;
            let src2_for_fwd = if self.has(DlxBug::ForwardingWrongOperand {
                from_stage: 0,
                slot: s,
            }) || self.has(DlxBug::ForwardingWrongOperand {
                from_stage: 1,
                slot: s,
            }) {
                ex.src1
            } else {
                ex.src2
            };
            let sources_a = self.forwarding_sources(ctx, &mem_slots, &wb_slots, s, 0);
            let sources_b = self.forwarding_sources(ctx, &mem_slots, &wb_slots, s, 1);
            let a_fwd = forward_value(ctx, ex.a, src1_for_fwd, &sources_a);
            let b_fwd = forward_value(ctx, ex.b, src2_for_fwd, &sources_b);
            let b_val = ctx.ite_term(ex.uses_imm, ex.imm, b_fwd);

            let alu_out = ctx.uf("alu", vec![ex.op, a_fwd, b_val]);

            // Exceptions.
            let exception = if self.config.exceptions {
                let raised = ctx.up("alu_exc", vec![ex.op, a_fwd, b_val]);
                ctx.and(valid_eff, raised)
            } else {
                ctx.false_id()
            };

            // Branch resolution.
            let cond_taken = ctx.up("btaken", vec![ex.op, a_fwd, b_val]);
            let branch_taken = if self.has(DlxBug::TakenUsesAndInsteadOfOr { slot: s }) {
                let both = ctx.and(ex.is_branch, cond_taken);
                ctx.and(ex.is_jump, both)
            } else {
                let cond = ctx.and(ex.is_branch, cond_taken);
                ctx.or(ex.is_jump, cond)
            };
            let actual_target = ctx.uf("btarget", vec![ex.pc, ex.imm]);
            let fall_through = ctx.uf("pc_plus_4", vec![ex.pc]);
            let is_control = ctx.or(ex.is_branch, ex.is_jump);

            // Misprediction / redirect condition.
            let redirect_needed = if self.config.branch_prediction {
                let taken_matches = ctx.iff(branch_taken, ex.pred_taken);
                let target_matches = ctx.eq(actual_target, ex.pred_target);
                let taken_and_target_ok = ctx.and(taken_matches, target_matches);
                let not_taken_ok = {
                    let not_taken = ctx.not(branch_taken);
                    let not_pred = ctx.not(ex.pred_taken);
                    ctx.and(not_taken, not_pred)
                };
                let prediction_correct = ctx.or(taken_and_target_ok, not_taken_ok);
                let mispredicted = ctx.not(prediction_correct);
                ctx.and(is_control, mispredicted)
            } else {
                branch_taken
            };
            let redirect_needed = ctx.and(valid_eff, redirect_needed);
            let correct_next_pc = ctx.ite_term(branch_taken, actual_target, fall_through);

            // Squash and PC redirection caused by this slot (exception first).
            let slot_squash = if self.has(DlxBug::NoSquashOnTakenBranch { slot: s }) {
                exception
            } else {
                ctx.or(exception, redirect_needed)
            };
            squash_new = ctx.or(squash_new, slot_squash);

            let slot_redirect_pc = ctx.ite_term(exception, exc_vector, correct_next_pc);
            let slot_redirects = if self.has(DlxBug::PcNotRedirected { slot: s }) {
                exception
            } else {
                ctx.or(exception, redirect_needed)
            };

            // EPC update.
            if self.config.exceptions {
                let save = if self.has(DlxBug::EpcNotSaved { slot: s }) {
                    ctx.false_id()
                } else {
                    exception
                };
                epc_next = Some(ctx.ite_term(save, ex.pc, epc_next.expect("epc present")));
            }

            // Pass the instruction to the Memory stage (exceptions suppress its
            // architectural effects).
            let no_exc = ctx.not(exception);
            let mem_valid = if self.has(DlxBug::WriteIgnoresException { slot: s }) {
                valid_eff
            } else {
                ctx.and(valid_eff, no_exc)
            };
            let dest = if self.has(DlxBug::WrongDestinationField { slot: s }) {
                ex.src2
            } else {
                ex.dest
            };
            let store_data = if self.has(DlxBug::StoreDataWrongInput { slot: s }) {
                b_val
            } else {
                b_fwd
            };
            next.set_formula(&mem_field(s, "valid"), mem_valid);
            next.set_term(&mem_field(s, "dest"), dest);
            next.set_term(&mem_field(s, "alu_out"), alu_out);
            next.set_term(&mem_field(s, "store_data"), store_data);
            next.set_formula(&mem_field(s, "is_load"), ex.is_load);
            next.set_formula(&mem_field(s, "is_store"), ex.is_store);
            next.set_formula(&mem_field(s, "writes_rf"), ex.writes_rf);

            older_exception = ctx.or(older_exception, exception);

            // Record the redirect for the PC computation below.  Only the
            // oldest redirecting slot must win; we rebuild the priority chain
            // after the loop using per-slot data, so stash them.
            next.set_formula(&format!("scratch.redirects.{s}"), slot_redirects);
            next.set_term(&format!("scratch.redirect_pc.{s}"), slot_redirect_pc);
        }

        // Priority-encode the PC redirection (oldest slot first).
        let mut pc_redirected = ctx.false_id();
        let mut pc_redirect_value = pc;
        for s in 0..width {
            let redirects = next.formula(&format!("scratch.redirects.{s}"));
            let value = next.term(&format!("scratch.redirect_pc.{s}"));
            let use_this = {
                let not_already = ctx.not(pc_redirected);
                ctx.and(not_already, redirects)
            };
            pc_redirect_value = ctx.ite_term(use_this, value, pc_redirect_value);
            pc_redirected = ctx.or(pc_redirected, redirects);
        }

        // ------------------------------------------------------------------
        // Fetch/decode stage: fetch `width` sequential instructions, read the
        // register file, detect stalls, and issue into Execute.
        // ------------------------------------------------------------------
        let mut fetch_pcs = vec![pc];
        for s in 1..width {
            let prev = fetch_pcs[s - 1];
            fetch_pcs.push(ctx.uf("pc_plus_4", vec![prev]));
        }
        let fields: Vec<InstrFields> = fetch_pcs
            .iter()
            .map(|&fpc| InstrFields::fetch(ctx, "imem", fpc))
            .collect();

        // Load interlock per decode slot.
        let mut stall = Vec::with_capacity(width);
        for (s, f) in fields.iter().enumerate() {
            let mut interlock = ctx.false_id();
            if !self.has(DlxBug::LoadInterlockMissing { slot: s }) {
                for ex in &ex_slots {
                    let producer = ctx.and(ex.valid, ex.is_load);
                    let producer = ctx.and(producer, ex.writes_rf);
                    let mut dependent = ctx.false_id();
                    if !self.has(DlxBug::LoadInterlockIgnoresOperand {
                        operand: 0,
                        slot: s,
                    }) {
                        let m1 = ctx.eq(ex.dest, f.src1);
                        dependent = ctx.or(dependent, m1);
                    }
                    if !self.has(DlxBug::LoadInterlockIgnoresOperand {
                        operand: 1,
                        slot: s,
                    }) {
                        let m2 = ctx.eq(ex.dest, f.src2);
                        dependent = ctx.or(dependent, m2);
                    }
                    let hazard = ctx.and(producer, dependent);
                    interlock = ctx.or(interlock, hazard);
                }
            }
            stall.push(interlock);
        }
        // Dual issue: the second slot additionally stalls behind the first on a
        // data dependency or when the first is a load, branch or jump.
        if width > 1 {
            let f0 = &fields[0];
            let f1 = &fields[1];
            let mut extra = stall[0];
            if !self.has(DlxBug::CoIssueIgnoresControl) {
                let control = ctx.or(f0.is_branch, f0.is_jump);
                let blocking = ctx.or(control, f0.is_load);
                extra = ctx.or(extra, blocking);
            }
            let mut raw = ctx.false_id();
            if !self.has(DlxBug::CoIssueIgnoresRaw { operand: 0 }) {
                let m = ctx.eq(f0.dest, f1.src1);
                raw = ctx.or(raw, m);
            }
            if !self.has(DlxBug::CoIssueIgnoresRaw { operand: 1 }) {
                let m = ctx.eq(f0.dest, f1.src2);
                raw = ctx.or(raw, m);
            }
            let raw_hazard = ctx.and(f0.writes_rf, raw);
            extra = ctx.or(extra, raw_hazard);
            stall[1] = ctx.or(stall[1], extra);
        }

        let no_squash = ctx.not(squash_new);
        let mut issue = Vec::with_capacity(width);
        for (s, &st) in stall.iter().enumerate() {
            let not_stalled = ctx.not(st);
            let mut ok = ctx.and(fetch_enabled, not_stalled);
            ok = ctx.and(ok, no_squash);
            if s > 0 {
                ok = ctx.and(ok, issue[s - 1]);
            }
            issue.push(ok);
        }

        // Latch the decoded instructions into Execute.
        for (s, f) in fields.iter().enumerate() {
            let rf_a = ctx.read(rf_after_wb, f.src1);
            let rf_b = ctx.read(rf_after_wb, f.src2);
            let pred_taken = if self.config.branch_prediction {
                let predicted = ctx.up("bp_taken", vec![fetch_pcs[s]]);
                let branch_pred = ctx.and(f.is_branch, predicted);
                ctx.or(branch_pred, f.is_jump)
            } else {
                ctx.false_id()
            };
            let pred_target = ctx.uf("bp_target", vec![fetch_pcs[s]]);

            next.set_formula(&ex_field(s, "valid"), issue[s]);
            next.set_term(&ex_field(s, "pc"), fetch_pcs[s]);
            next.set_term(&ex_field(s, "op"), f.op);
            next.set_term(&ex_field(s, "src1"), f.src1);
            next.set_term(&ex_field(s, "src2"), f.src2);
            next.set_term(&ex_field(s, "dest"), f.dest);
            next.set_term(&ex_field(s, "imm"), f.imm);
            next.set_term(&ex_field(s, "a"), rf_a);
            next.set_term(&ex_field(s, "b"), rf_b);
            next.set_formula(&ex_field(s, "is_load"), f.is_load);
            next.set_formula(&ex_field(s, "is_store"), f.is_store);
            next.set_formula(&ex_field(s, "is_branch"), f.is_branch);
            next.set_formula(&ex_field(s, "is_jump"), f.is_jump);
            next.set_formula(&ex_field(s, "writes_rf"), f.writes_rf);
            next.set_formula(&ex_field(s, "uses_imm"), f.uses_imm);
            next.set_formula(&ex_field(s, "pred_taken"), pred_taken);
            next.set_term(&ex_field(s, "pred_target"), pred_target);
        }

        // ------------------------------------------------------------------
        // Program counter.
        // ------------------------------------------------------------------
        let pc_after_issue = {
            // How far did the fetch advance?  0, 1 (slot 0 only), or `width`.
            let mut advanced = pc;
            for (s, &issued) in issue.iter().enumerate() {
                let next_pc = if self.config.branch_prediction {
                    let seq = ctx.uf("pc_plus_4", vec![fetch_pcs[s]]);
                    let pred_taken = next.formula(&ex_field(s, "pred_taken"));
                    let pred_target = next.term(&ex_field(s, "pred_target"));
                    ctx.ite_term(pred_taken, pred_target, seq)
                } else {
                    ctx.uf("pc_plus_4", vec![fetch_pcs[s]])
                };
                advanced = ctx.ite_term(issued, next_pc, advanced);
            }
            advanced
        };
        let pc_next = ctx.ite_term(pc_redirected, pc_redirect_value, pc_after_issue);
        next.set_term("pc", pc_next);
        next.set_term("rf", rf_after_wb);
        if let Some(epc_value) = epc_next {
            next.set_term("epc", epc_value);
        }

        // Drop the scratch entries used for the PC priority chain.
        let mut cleaned = SymbolicState::new();
        for element in self.state_elements() {
            match element.kind {
                velv_hdl::StateKind::Flag => {
                    cleaned.set_formula(&element.name, next.formula(&element.name));
                }
                _ => {
                    cleaned.set_term(&element.name, next.term(&element.name));
                }
            }
        }
        cleaned
    }

    fn completion_windows(
        &self,
        ctx: &mut Context,
        initial: &SymbolicState,
        stepped: &SymbolicState,
    ) -> Option<Vec<FormulaId>> {
        let _ = initial;
        // The number of completing instructions equals the number of issued
        // slots: an issued instruction is never squashed later (branches and
        // exceptions resolve in Execute, and everything older has already
        // passed Execute by the time the new instruction gets there).
        let width = self.config.issue_width;
        let issued: Vec<FormulaId> = (0..width)
            .map(|s| stepped.formula(&ex_field(s, "valid")))
            .collect();
        let mut windows = Vec::with_capacity(width + 1);
        for l in 0..=width {
            // Exactly l slots issued; with in-order issue slot s is issued only
            // if every younger-numbered slot was, so "exactly l" is
            // "slot l-1 issued and slot l not issued".
            let lower = if l == 0 { ctx.true_id() } else { issued[l - 1] };
            let upper = if l == width {
                ctx.true_id()
            } else {
                ctx.not(issued[l])
            };
            windows.push(ctx.and(lower, upper));
        }
        Some(windows)
    }
}

/// Applies a forwarding mux chain to an operand value: the first active source
/// whose destination matches `src` overrides the base value.
fn forward_value(
    ctx: &mut Context,
    base: TermId,
    src: TermId,
    sources: &[(FormulaId, TermId, TermId)],
) -> TermId {
    let mut value = base;
    for &(active, dest, data) in sources.iter().rev() {
        let matches = ctx.eq(src, dest);
        let take = ctx.and(active, matches);
        value = ctx.ite_term(take, data, value);
    }
    value
}

/// The single-cycle DLX specification (the ISA model).
#[derive(Clone, Debug)]
pub struct DlxSpecification {
    config: DlxConfig,
}

impl DlxSpecification {
    /// Creates the specification for a configuration (the specification only
    /// depends on whether exceptions are architecturally visible).
    pub fn new(config: DlxConfig) -> Self {
        DlxSpecification { config }
    }
}

impl Processor for DlxSpecification {
    fn name(&self) -> &str {
        "DLX-spec"
    }

    fn state_elements(&self) -> Vec<StateElement> {
        Dlx::arch_elements(self.config)
    }

    fn fetch_width(&self) -> usize {
        1
    }

    fn flush_cycles(&self) -> usize {
        0
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let pc = state.term("pc");
        let rf = state.term("rf");
        let dmem = state.term("dmem");

        let f = InstrFields::fetch(ctx, "imem", pc);
        let a = ctx.read(rf, f.src1);
        let b_reg = ctx.read(rf, f.src2);
        let b_val = ctx.ite_term(f.uses_imm, f.imm, b_reg);
        let alu_out = ctx.uf("alu", vec![f.op, a, b_val]);

        let exception = if self.config.exceptions {
            ctx.up("alu_exc", vec![f.op, a, b_val])
        } else {
            ctx.false_id()
        };
        let no_exc = ctx.not(exception);

        // Data memory.
        let do_store = ctx.and(f.is_store, no_exc);
        let do_store = ctx.and(do_store, fetch_enabled);
        let dmem_next = conditional_write(ctx, dmem, do_store, alu_out, b_reg);
        let load_value = ctx.read(dmem_next, alu_out);
        let result = ctx.ite_term(f.is_load, load_value, alu_out);

        // Register file.
        let do_write = ctx.and(f.writes_rf, no_exc);
        let do_write = ctx.and(do_write, fetch_enabled);
        let rf_next = conditional_write(ctx, rf, do_write, f.dest, result);

        // Program counter.
        let cond_taken = ctx.up("btaken", vec![f.op, a, b_val]);
        let branch_cond = ctx.and(f.is_branch, cond_taken);
        let taken = ctx.or(f.is_jump, branch_cond);
        let target = ctx.uf("btarget", vec![pc, f.imm]);
        let sequential = ctx.uf("pc_plus_4", vec![pc]);
        let normal_pc = ctx.ite_term(taken, target, sequential);
        let exc_vector = ctx.term_var("exc_vector");
        let resolved_pc = ctx.ite_term(exception, exc_vector, normal_pc);
        let pc_next = ctx.ite_term(fetch_enabled, resolved_pc, pc);

        let mut next = SymbolicState::new();
        next.set_term("pc", pc_next);
        next.set_term("rf", rf_next);
        next.set_term("dmem", dmem_next);
        if self.config.exceptions {
            let epc = state.term("epc");
            let save = ctx.and(fetch_enabled, exception);
            let epc_next = ctx.ite_term(save, pc, epc);
            next.set_term("epc", epc_next);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_elements_are_consistent() {
        for config in [
            DlxConfig::single_issue(),
            DlxConfig::dual_issue(),
            DlxConfig::dual_issue_full(),
        ] {
            let implementation = Dlx::correct(config);
            let spec = DlxSpecification::new(config);
            assert_eq!(
                implementation.arch_state(),
                spec.arch_state(),
                "{}",
                config.name()
            );
            assert_eq!(implementation.fetch_width(), config.issue_width);
            // Every declared element is produced by a step.
            let mut ctx = Context::new();
            let initial = SymbolicState::initial(&mut ctx, &implementation.state_elements(), "");
            let enabled = ctx.true_id();
            let next = implementation.step(&mut ctx, &initial, enabled);
            for element in implementation.state_elements() {
                assert!(
                    next.contains(&element.name),
                    "{}: missing {}",
                    config.name(),
                    element.name
                );
            }
            let spec_initial = SymbolicState::initial(&mut ctx, &spec.state_elements(), "s_");
            let spec_next = spec.step(&mut ctx, &spec_initial, enabled);
            for element in spec.state_elements() {
                assert!(spec_next.contains(&element.name));
            }
        }
    }

    #[test]
    fn completion_windows_cover_all_counts() {
        let config = DlxConfig::dual_issue();
        let implementation = Dlx::correct(config);
        let mut ctx = Context::new();
        let initial = SymbolicState::initial(&mut ctx, &implementation.state_elements(), "");
        let enabled = ctx.true_id();
        let stepped = implementation.step(&mut ctx, &initial, enabled);
        let windows = implementation
            .completion_windows(&mut ctx, &initial, &stepped)
            .expect("DLX provides completion windows");
        assert_eq!(windows.len(), config.issue_width + 1);
        // The windows are exhaustive: their disjunction is a tautology because
        // "exactly l issued" for l = 0..=width covers all cases of the in-order
        // issue chain.  We check the weaker structural property that the
        // disjunction does not simplify to false.
        let coverage = ctx.or_many(windows.iter().copied());
        assert!(!ctx.is_false(coverage));
    }

    #[test]
    fn bug_catalog_sizes() {
        assert!(bug_catalog(DlxConfig::single_issue()).len() >= 15);
        assert!(bug_catalog(DlxConfig::dual_issue()).len() >= 100);
        assert!(bug_catalog(DlxConfig::dual_issue_full()).len() >= 100);
    }

    #[test]
    fn buggy_builder_records_the_bug() {
        let bug = DlxBug::LoadInterlockMissing { slot: 0 };
        let design = Dlx::buggy(DlxConfig::single_issue(), bug);
        assert_eq!(design.bug(), Some(bug));
        assert!(design.name().ends_with("buggy"));
    }
}
