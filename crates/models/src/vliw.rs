//! The VLIW benchmark: 9VLIW-MC-BP and its exception-enabled extension
//! 9VLIW-MC-BP-EX.
//!
//! The model imitates the Intel Itanium features the paper lists: a packet of
//! nine instruction slots matched to fixed execution pipelines (four integer —
//! two of which may access memory —, two floating-point, three branch),
//! predicated execution through a predicate register file, speculative
//! register remapping through a current frame marker (CFM), an advanced-load
//! address table (ALAT), branch prediction with misprediction squash, and
//! (optionally) exceptions with an EPC.
//!
//! Architecturally the packet is the unit of execution: the specification
//! executes one whole packet per step, and the implementation holds one packet
//! in flight (fetched at the predicted successor address) while the previous
//! packet executes and commits — a scaled-down pipeline (the original keeps up
//! to 42 instructions in flight; see the substitution list in `DESIGN.md`).

use velv_eufm::{Context, FormulaId, TermId};
use velv_hdl::{Processor, StateElement, SymbolicState};

/// What a slot position is wired to execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKind {
    /// Integer ALU slot with memory access capability.
    IntMem,
    /// Integer ALU slot.
    Int,
    /// Floating-point slot.
    Float,
    /// Branch-address slot.
    Branch,
}

/// Configuration of the VLIW design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VliwConfig {
    /// Number of slots per packet (9 in the paper).
    pub slots: usize,
    /// Whether exceptions and the EPC are modeled.
    pub exceptions: bool,
}

impl VliwConfig {
    /// The base 9VLIW-MC-BP configuration.
    pub fn base() -> Self {
        VliwConfig {
            slots: 9,
            exceptions: false,
        }
    }

    /// 9VLIW-MC-BP-EX: adds exceptions.
    pub fn with_exceptions() -> Self {
        VliwConfig {
            slots: 9,
            exceptions: true,
        }
    }

    /// A reduced-width variant (useful for quick experiments and tests).
    pub fn with_slots(slots: usize) -> Self {
        VliwConfig {
            slots,
            exceptions: false,
        }
    }

    /// Design name used in the experiment tables.
    pub fn name(&self) -> &'static str {
        if self.exceptions {
            "9VLIW-MC-BP-EX"
        } else {
            "9VLIW-MC-BP"
        }
    }

    /// The execution-pipeline kind of a slot position.
    pub fn slot_kind(&self, slot: usize) -> SlotKind {
        match slot * 9 / self.slots.max(1) {
            0 | 1 => SlotKind::IntMem,
            2 | 3 => SlotKind::Int,
            4 | 5 => SlotKind::Float,
            _ => SlotKind::Branch,
        }
    }
}

/// Error classes injected into the VLIW design (the VLIW-SAT.1.0 suite).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VliwBug {
    /// The slot commits its result even when its qualifying predicate is off.
    PredicationIgnored {
        /// Offending slot.
        slot: usize,
    },
    /// A source register bypasses the CFM remapping (wrong input).
    RemapMissing {
        /// Offending slot.
        slot: usize,
    },
    /// The destination register is taken from the wrong field.
    WrongDestinationField {
        /// Offending slot.
        slot: usize,
    },
    /// A store ignores its qualifying predicate.
    StoreIgnoresPredicate {
        /// Offending memory slot.
        slot: usize,
    },
    /// The speculatively fetched packet is not squashed on a misprediction.
    NoSquashOnMispredict,
    /// The PC is not corrected on a misprediction.
    PcNotCorrected,
    /// The CFM is updated speculatively at fetch with no repair on squash
    /// (the bug the authors report making while designing 9VLIW-MC-BP).
    CfmUpdatedSpeculatively,
    /// An excepting slot still writes its destination register.
    ExceptionIgnoredByWrite {
        /// Offending slot.
        slot: usize,
    },
    /// The EPC is not saved when an exception is raised.
    EpcNotSaved,
    /// The branch-resolution priority picks the wrong (youngest) taken branch.
    BranchPriorityReversed,
}

/// Deterministic bug catalog for a configuration; at least 100 entries for the
/// full 9-slot designs.
pub fn bug_catalog(config: VliwConfig) -> Vec<VliwBug> {
    let mut bugs = Vec::new();
    for slot in 0..config.slots {
        bugs.push(VliwBug::PredicationIgnored { slot });
        bugs.push(VliwBug::RemapMissing { slot });
        bugs.push(VliwBug::WrongDestinationField { slot });
        if matches!(config.slot_kind(slot), SlotKind::IntMem) {
            bugs.push(VliwBug::StoreIgnoresPredicate { slot });
        }
        if config.exceptions {
            bugs.push(VliwBug::ExceptionIgnoredByWrite { slot });
        }
    }
    bugs.push(VliwBug::NoSquashOnMispredict);
    bugs.push(VliwBug::PcNotCorrected);
    bugs.push(VliwBug::CfmUpdatedSpeculatively);
    bugs.push(VliwBug::BranchPriorityReversed);
    if config.exceptions {
        bugs.push(VliwBug::EpcNotSaved);
    }
    // Pad with further parameterised variants of the same classes, as the
    // paper's suite also contains multiple variants per class.
    let mut extra = 0usize;
    while bugs.len() < 100 && config.slots >= 2 {
        let slot = extra % config.slots;
        bugs.push(match extra % 3 {
            0 => VliwBug::PredicationIgnored { slot },
            1 => VliwBug::RemapMissing { slot },
            _ => VliwBug::WrongDestinationField { slot },
        });
        extra += 1;
    }
    bugs
}

/// The VLIW implementation.
#[derive(Clone, Debug)]
pub struct Vliw {
    config: VliwConfig,
    bug: Option<VliwBug>,
    name: String,
}

impl Vliw {
    /// The correct implementation.
    pub fn correct(config: VliwConfig) -> Self {
        Vliw {
            config,
            bug: None,
            name: config.name().to_owned(),
        }
    }

    /// An implementation with an injected bug.
    pub fn buggy(config: VliwConfig, bug: VliwBug) -> Self {
        Vliw {
            config,
            bug: Some(bug),
            name: format!("{}-buggy", config.name()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> VliwConfig {
        self.config
    }

    fn has(&self, bug: VliwBug) -> bool {
        self.bug == Some(bug)
    }

    fn arch_elements(config: VliwConfig) -> Vec<StateElement> {
        let mut elements = vec![
            StateElement::arch_term("pc"),
            StateElement::arch_memory("int_rf"),
            StateElement::arch_memory("fp_rf"),
            StateElement::arch_memory("pred_rf"),
            StateElement::arch_memory("baddr_rf"),
            StateElement::arch_memory("dmem"),
            StateElement::arch_memory("alat"),
            StateElement::arch_term("cfm"),
        ];
        if config.exceptions {
            elements.push(StateElement::arch_term("epc"));
        }
        elements
    }

    /// Executes one packet fetched at `pc` against the given architectural
    /// values, returning the updated values and the actual next PC.
    ///
    /// `bug` is `None` for the specification semantics.
    #[allow(clippy::too_many_arguments)]
    fn execute_packet(
        config: VliwConfig,
        bug: Option<&Vliw>,
        ctx: &mut Context,
        pc: TermId,
        mut int_rf: TermId,
        mut fp_rf: TermId,
        pred_rf: TermId,
        baddr_rf: TermId,
        mut dmem: TermId,
        mut alat: TermId,
        cfm: TermId,
        epc: Option<TermId>,
    ) -> PacketResult {
        let has = |b: VliwBug| bug.is_some_and(|v| v.has(b));
        let mut cfm_next = cfm;
        let mut epc_next = epc;
        let mut exception_seen = ctx.false_id();
        let mut taken_branch: Option<(FormulaId, TermId)> = None;
        let exc_vector = ctx.term_var("exc_vector");

        for slot in 0..config.slots {
            let kind = config.slot_kind(slot);
            let field = |ctx: &mut Context, name: &str| ctx.uf(&format!("{name}_{slot}"), vec![pc]);
            let up_field =
                |ctx: &mut Context, name: &str| ctx.up(&format!("{name}_{slot}"), vec![pc]);

            // Qualifying predicate.
            let qp_reg = field(ctx, "qp");
            let qp_value = ctx.read(pred_rf, qp_reg);
            let pred_on = ctx.up("pred_true", vec![qp_value]);
            let active = if has(VliwBug::PredicationIgnored { slot }) {
                ctx.true_id()
            } else {
                pred_on
            };
            let not_excepted = ctx.not(exception_seen);
            let active = ctx.and(active, not_excepted);

            match kind {
                SlotKind::IntMem | SlotKind::Int | SlotKind::Float => {
                    let (rf, alu_name) = if kind == SlotKind::Float {
                        (&mut fp_rf, "alu_fp")
                    } else {
                        (&mut int_rf, "alu_int")
                    };
                    let op = field(ctx, "op");
                    let src1 = field(ctx, "src1");
                    let src2 = field(ctx, "src2");
                    let dest_field = field(ctx, "dest");
                    let wrong_dest = field(ctx, "src2");
                    let dest_logical = if has(VliwBug::WrongDestinationField { slot }) {
                        wrong_dest
                    } else {
                        dest_field
                    };
                    // CFM-based register remapping.
                    let remap = |ctx: &mut Context, reg: TermId, skip: bool| {
                        if skip {
                            reg
                        } else {
                            ctx.uf("remap", vec![cfm, reg])
                        }
                    };
                    let skip_remap = has(VliwBug::RemapMissing { slot });
                    let rsrc1 = remap(ctx, src1, skip_remap);
                    let rsrc2 = remap(ctx, src2, false);
                    let rdest = remap(ctx, dest_logical, false);
                    let a = ctx.read(*rf, rsrc1);
                    let b = ctx.read(*rf, rsrc2);
                    let mut result = ctx.uf(alu_name, vec![op, a, b]);

                    // Exceptions.
                    let exception = if config.exceptions {
                        let raised = ctx.up("alu_exc", vec![op, a, b]);
                        ctx.and(active, raised)
                    } else {
                        ctx.false_id()
                    };

                    // Memory slots: loads, stores and advanced loads.
                    let mut write_enable = active;
                    if kind == SlotKind::IntMem {
                        let is_load = up_field(ctx, "is_load");
                        let is_store = up_field(ctx, "is_store");
                        let is_adv = up_field(ctx, "is_adv_load");
                        let addr = result;
                        let loaded = ctx.read(dmem, addr);
                        result = ctx.ite_term(is_load, loaded, result);
                        let store_active = if has(VliwBug::StoreIgnoresPredicate { slot }) {
                            is_store
                        } else {
                            ctx.and(active, is_store)
                        };
                        let no_exc = ctx.not(exception);
                        let store_active = ctx.and(store_active, no_exc);
                        let stored = ctx.write(dmem, addr, b);
                        dmem = ctx.ite_term(store_active, stored, dmem);
                        // Advanced loads record their address in the ALAT.
                        let adv_active = ctx.and(active, is_adv);
                        let alat_written = ctx.write(alat, rdest, addr);
                        alat = ctx.ite_term(adv_active, alat_written, alat);
                        let _ = write_enable;
                        write_enable = active;
                    }

                    // Register write-back.
                    let suppressed = if has(VliwBug::ExceptionIgnoredByWrite { slot }) {
                        ctx.false_id()
                    } else {
                        exception
                    };
                    let not_suppressed = ctx.not(suppressed);
                    let do_write = ctx.and(write_enable, not_suppressed);
                    let written = ctx.write(*rf, rdest, result);
                    *rf = ctx.ite_term(do_write, written, *rf);

                    // Exception bookkeeping.
                    if config.exceptions {
                        let save = if has(VliwBug::EpcNotSaved) {
                            ctx.false_id()
                        } else {
                            exception
                        };
                        if let Some(epc_value) = epc_next {
                            epc_next = Some(ctx.ite_term(save, pc, epc_value));
                        }
                        exception_seen = ctx.or(exception_seen, exception);
                    }

                    // A designated integer slot updates the CFM (register
                    // remapping for the next packet).
                    if slot == 2 {
                        let is_cfm = up_field(ctx, "is_cfm_update");
                        let cfm_updated = ctx.uf("cfm_next", vec![cfm, op]);
                        let update = ctx.and(active, is_cfm);
                        cfm_next = ctx.ite_term(update, cfm_updated, cfm_next);
                    }
                }
                SlotKind::Branch => {
                    // A branch slot is taken when its qualifying predicate holds;
                    // the target comes from the branch-address register file.
                    let breg = field(ctx, "breg");
                    let rbreg = ctx.uf("remap", vec![cfm, breg]);
                    let target = ctx.read(baddr_rf, rbreg);
                    let taken = active;
                    taken_branch = Some(match taken_branch {
                        None => (taken, target),
                        Some((prev_taken, prev_target)) => {
                            if bug.is_some_and(|v| v.has(VliwBug::BranchPriorityReversed)) {
                                // Buggy priority: the youngest taken branch wins.
                                let t = ctx.or(prev_taken, taken);
                                let tgt = ctx.ite_term(taken, target, prev_target);
                                (t, tgt)
                            } else {
                                // Correct priority: the oldest taken branch wins.
                                let t = ctx.or(prev_taken, taken);
                                let tgt = ctx.ite_term(prev_taken, prev_target, target);
                                (t, tgt)
                            }
                        }
                    });
                }
            }
        }

        // Actual next PC: exception vector, else the oldest taken branch target,
        // else the sequential successor packet.
        let sequential = ctx.uf("pc_next", vec![pc]);
        let (any_taken, branch_target) = taken_branch.unwrap_or((ctx.false_id(), sequential));
        let normal_next = ctx.ite_term(any_taken, branch_target, sequential);
        let next_pc = if config.exceptions {
            ctx.ite_term(exception_seen, exc_vector, normal_next)
        } else {
            normal_next
        };

        PacketResult {
            int_rf,
            fp_rf,
            pred_rf,
            baddr_rf,
            dmem,
            alat,
            cfm: cfm_next,
            epc: epc_next,
            next_pc,
        }
    }
}

struct PacketResult {
    int_rf: TermId,
    fp_rf: TermId,
    pred_rf: TermId,
    baddr_rf: TermId,
    dmem: TermId,
    alat: TermId,
    cfm: TermId,
    epc: Option<TermId>,
    next_pc: TermId,
}

impl Processor for Vliw {
    fn name(&self) -> &str {
        &self.name
    }

    fn state_elements(&self) -> Vec<StateElement> {
        let mut elements = Vliw::arch_elements(self.config);
        elements.push(StateElement::pipe_flag("fetch.valid"));
        elements.push(StateElement::pipe_term("fetch.pc"));
        elements
    }

    fn fetch_width(&self) -> usize {
        1
    }

    fn flush_cycles(&self) -> usize {
        1
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let pc = state.term("pc");
        let fetch_valid = state.formula("fetch.valid");
        let fetch_pc = state.term("fetch.pc");
        let epc = if self.config.exceptions {
            Some(state.term("epc"))
        } else {
            None
        };

        // Execute and commit the packet currently in flight.
        let executed = Vliw::execute_packet(
            self.config,
            Some(self),
            ctx,
            fetch_pc,
            state.term("int_rf"),
            state.term("fp_rf"),
            state.term("pred_rf"),
            state.term("baddr_rf"),
            state.term("dmem"),
            state.term("alat"),
            state.term("cfm"),
            epc,
        );
        let commit = fetch_valid;
        let mux = |ctx: &mut Context, new: TermId, old: TermId| ctx.ite_term(commit, new, old);
        let int_rf = mux(ctx, executed.int_rf, state.term("int_rf"));
        let fp_rf = mux(ctx, executed.fp_rf, state.term("fp_rf"));
        let pred_rf = mux(ctx, executed.pred_rf, state.term("pred_rf"));
        let baddr_rf = mux(ctx, executed.baddr_rf, state.term("baddr_rf"));
        let dmem = mux(ctx, executed.dmem, state.term("dmem"));
        let alat = mux(ctx, executed.alat, state.term("alat"));
        let mut cfm = mux(ctx, executed.cfm, state.term("cfm"));
        let epc_next = epc.map(|old| {
            let new = executed.epc.expect("exceptions enabled");
            ctx.ite_term(commit, new, old)
        });

        // Misprediction check: the packet speculatively fetched at the current
        // PC is on the wrong path when the executed packet's actual successor
        // differs from the current PC.
        let predicted_correctly = ctx.eq(executed.next_pc, pc);
        let mispredicted = ctx.not(predicted_correctly);
        let mispredict = ctx.and(commit, mispredicted);

        // Fetch the next packet at the predicted successor of the current PC.
        let bp_taken = ctx.up("bp_taken", vec![pc]);
        let bp_target = ctx.uf("bp_target", vec![pc]);
        let sequential = ctx.uf("pc_next", vec![pc]);
        let predicted_next = ctx.ite_term(bp_taken, bp_target, sequential);

        let squash = if self.has(VliwBug::NoSquashOnMispredict) {
            ctx.false_id()
        } else {
            mispredict
        };
        let not_squashed = ctx.not(squash);
        let fetch_valid_next = ctx.and(fetch_enabled, not_squashed);

        // Speculative CFM update at fetch (only present as an injected bug).
        if self.has(VliwBug::CfmUpdatedSpeculatively) {
            let op2 = ctx.uf("op_2", vec![pc]);
            let spec_cfm = ctx.uf("cfm_next", vec![cfm, op2]);
            cfm = ctx.ite_term(fetch_enabled, spec_cfm, cfm);
        }

        // Program counter.
        let redirect = if self.has(VliwBug::PcNotCorrected) {
            ctx.false_id()
        } else {
            mispredict
        };
        let advanced = ctx.ite_term(fetch_enabled, predicted_next, pc);
        let pc_next = ctx.ite_term(redirect, executed.next_pc, advanced);

        let mut next = SymbolicState::new();
        next.set_term("pc", pc_next);
        next.set_term("int_rf", int_rf);
        next.set_term("fp_rf", fp_rf);
        next.set_term("pred_rf", pred_rf);
        next.set_term("baddr_rf", baddr_rf);
        next.set_term("dmem", dmem);
        next.set_term("alat", alat);
        next.set_term("cfm", cfm);
        if let Some(epc_value) = epc_next {
            next.set_term("epc", epc_value);
        }
        next.set_formula("fetch.valid", fetch_valid_next);
        next.set_term("fetch.pc", pc);
        next
    }

    fn completion_windows(
        &self,
        ctx: &mut Context,
        _initial: &SymbolicState,
        stepped: &SymbolicState,
    ) -> Option<Vec<FormulaId>> {
        // The newly fetched packet completes exactly when it entered the fetch
        // latch as valid (it can only be squashed by the packet ahead of it,
        // which resolves during the verified cycle).
        let completes = stepped.formula("fetch.valid");
        let not_completes = ctx.not(completes);
        Some(vec![not_completes, completes])
    }
}

/// The packet-at-a-time VLIW specification.
#[derive(Clone, Debug)]
pub struct VliwSpecification {
    config: VliwConfig,
}

impl VliwSpecification {
    /// Creates the specification for a configuration.
    pub fn new(config: VliwConfig) -> Self {
        VliwSpecification { config }
    }
}

impl Processor for VliwSpecification {
    fn name(&self) -> &str {
        "VLIW-spec"
    }

    fn state_elements(&self) -> Vec<StateElement> {
        Vliw::arch_elements(self.config)
    }

    fn fetch_width(&self) -> usize {
        1
    }

    fn flush_cycles(&self) -> usize {
        0
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let pc = state.term("pc");
        let epc = if self.config.exceptions {
            Some(state.term("epc"))
        } else {
            None
        };
        let executed = Vliw::execute_packet(
            self.config,
            None,
            ctx,
            pc,
            state.term("int_rf"),
            state.term("fp_rf"),
            state.term("pred_rf"),
            state.term("baddr_rf"),
            state.term("dmem"),
            state.term("alat"),
            state.term("cfm"),
            epc,
        );
        let mux =
            |ctx: &mut Context, new: TermId, old: TermId| ctx.ite_term(fetch_enabled, new, old);
        let mut next = SymbolicState::new();
        next.set_term("pc", mux(ctx, executed.next_pc, pc));
        next.set_term("int_rf", mux(ctx, executed.int_rf, state.term("int_rf")));
        next.set_term("fp_rf", mux(ctx, executed.fp_rf, state.term("fp_rf")));
        next.set_term("pred_rf", mux(ctx, executed.pred_rf, state.term("pred_rf")));
        next.set_term(
            "baddr_rf",
            mux(ctx, executed.baddr_rf, state.term("baddr_rf")),
        );
        next.set_term("dmem", mux(ctx, executed.dmem, state.term("dmem")));
        next.set_term("alat", mux(ctx, executed.alat, state.term("alat")));
        next.set_term("cfm", mux(ctx, executed.cfm, state.term("cfm")));
        if let Some(old_epc) = epc {
            let new = executed.epc.expect("exceptions enabled");
            next.set_term("epc", mux(ctx, new, old_epc));
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configuration_and_slot_kinds() {
        let config = VliwConfig::base();
        assert_eq!(config.slots, 9);
        assert_eq!(config.slot_kind(0), SlotKind::IntMem);
        assert_eq!(config.slot_kind(3), SlotKind::Int);
        assert_eq!(config.slot_kind(5), SlotKind::Float);
        assert_eq!(config.slot_kind(8), SlotKind::Branch);
        assert_eq!(VliwConfig::with_exceptions().name(), "9VLIW-MC-BP-EX");
    }

    #[test]
    fn state_elements_match_specification() {
        for config in [
            VliwConfig::base(),
            VliwConfig::with_exceptions(),
            VliwConfig::with_slots(3),
        ] {
            let implementation = Vliw::correct(config);
            let spec = VliwSpecification::new(config);
            assert_eq!(implementation.arch_state(), spec.arch_state());
            let mut ctx = Context::new();
            let initial = SymbolicState::initial(&mut ctx, &implementation.state_elements(), "");
            let enabled = ctx.true_id();
            let next = implementation.step(&mut ctx, &initial, enabled);
            for element in implementation.state_elements() {
                assert!(next.contains(&element.name), "missing {}", element.name);
            }
        }
    }

    #[test]
    fn bug_catalog_has_at_least_100_entries() {
        assert!(bug_catalog(VliwConfig::base()).len() >= 100);
        assert!(bug_catalog(VliwConfig::with_exceptions()).len() >= 100);
    }
}
