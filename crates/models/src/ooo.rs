//! Out-of-order superscalar models whose correctness proofs require
//! transitivity of equality (the FVP-UNSAT.2.0 designs of Tables 4 and 5).
//!
//! The implementation fetches `w` register–register instructions per cycle and
//! retires them *out of program order*: it walks the group from the youngest
//! instruction to the oldest and skips any instruction whose destination is
//! overwritten by a younger instruction of the same group (a write-after-write
//! check), while operands are obtained through an intra-group bypass network.
//! The specification executes the same instructions strictly in program order.
//! Proving the two register files equal requires combining the witness-address
//! comparisons `z = dest_i` with the WAW comparisons `dest_i = dest_j`, i.e.
//! transitivity of equality — exactly the property these benchmarks exercise.

use velv_eufm::{Context, FormulaId, TermId};
use velv_hdl::{Processor, StateElement, SymbolicState};

/// The out-of-order implementation, parameterised by issue width.
#[derive(Clone, Debug)]
pub struct Ooo {
    width: usize,
    name: String,
}

impl Ooo {
    /// Creates the implementation with the given issue width (2..=6 in the paper).
    pub fn new(width: usize) -> Self {
        assert!(width >= 1, "issue width must be positive");
        Ooo {
            width,
            name: format!("OOO-{width}wide"),
        }
    }

    /// The issue width.
    pub fn width(&self) -> usize {
        self.width
    }

    fn arch_elements() -> Vec<StateElement> {
        vec![
            StateElement::arch_term("pc"),
            StateElement::arch_memory("rf"),
        ]
    }

    /// Decoded fields of the `i`-th instruction of the group starting at `pc`.
    fn instr(ctx: &mut Context, pc: TermId, index: usize) -> (TermId, TermId, TermId, TermId) {
        let mut fetch_pc = pc;
        for _ in 0..index {
            fetch_pc = ctx.uf("pc_plus_4", vec![fetch_pc]);
        }
        let op = ctx.uf("imem_op", vec![fetch_pc]);
        let src = ctx.uf("imem_src1", vec![fetch_pc]);
        let dest = ctx.uf("imem_dest", vec![fetch_pc]);
        (fetch_pc, op, src, dest)
    }
}

impl Processor for Ooo {
    fn name(&self) -> &str {
        &self.name
    }

    fn state_elements(&self) -> Vec<StateElement> {
        Ooo::arch_elements()
    }

    fn fetch_width(&self) -> usize {
        self.width
    }

    fn flush_cycles(&self) -> usize {
        0
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let pc = state.term("pc");
        let rf = state.term("rf");
        let w = self.width;

        // Decode the group and compute every result through the bypass network:
        // instruction i reads the value produced by the latest older instruction
        // writing its source register, falling back to the register file.
        let mut decoded = Vec::with_capacity(w);
        for i in 0..w {
            decoded.push(Ooo::instr(ctx, pc, i));
        }
        let mut results: Vec<TermId> = Vec::with_capacity(w);
        for i in 0..w {
            let (_, op, src, _) = decoded[i];
            let mut operand = ctx.read(rf, src);
            for j in 0..i {
                let (_, _, _, dest_j) = decoded[j];
                let matches = ctx.eq(src, dest_j);
                operand = ctx.ite_term(matches, results[j], operand);
            }
            results.push(ctx.uf("alu", vec![op, operand]));
        }

        // Out-of-order retirement: youngest first, skipping instructions whose
        // destination is overwritten by a younger instruction of the group.
        let mut rf_next = rf;
        for i in (0..w).rev() {
            let (_, _, _, dest_i) = decoded[i];
            let mut overwritten = ctx.false_id();
            for &(_, _, _, dest_j) in &decoded[(i + 1)..w] {
                let same = ctx.eq(dest_i, dest_j);
                overwritten = ctx.or(overwritten, same);
            }
            let retire = ctx.not(overwritten);
            let written = ctx.write(rf_next, dest_i, results[i]);
            rf_next = ctx.ite_term(retire, written, rf_next);
        }

        let mut next_pc = pc;
        for _ in 0..w {
            next_pc = ctx.uf("pc_plus_4", vec![next_pc]);
        }

        let mut next = SymbolicState::new();
        let pc_value = ctx.ite_term(fetch_enabled, next_pc, pc);
        let rf_value = ctx.ite_term(fetch_enabled, rf_next, rf);
        next.set_term("pc", pc_value);
        next.set_term("rf", rf_value);
        next
    }

    fn completion_windows(
        &self,
        ctx: &mut Context,
        _initial: &SymbolicState,
        _stepped: &SymbolicState,
    ) -> Option<Vec<FormulaId>> {
        // Every instruction of the group always completes.
        let mut windows = vec![ctx.false_id(); self.width + 1];
        windows[self.width] = ctx.true_id();
        Some(windows)
    }
}

/// The in-order, one-instruction-per-step specification.
#[derive(Clone, Debug, Default)]
pub struct OooSpecification;

impl OooSpecification {
    /// Creates the specification.
    pub fn new() -> Self {
        OooSpecification
    }
}

impl Processor for OooSpecification {
    fn name(&self) -> &str {
        "OOO-spec"
    }

    fn state_elements(&self) -> Vec<StateElement> {
        Ooo::arch_elements()
    }

    fn fetch_width(&self) -> usize {
        1
    }

    fn flush_cycles(&self) -> usize {
        0
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let pc = state.term("pc");
        let rf = state.term("rf");
        let op = ctx.uf("imem_op", vec![pc]);
        let src = ctx.uf("imem_src1", vec![pc]);
        let dest = ctx.uf("imem_dest", vec![pc]);
        let operand = ctx.read(rf, src);
        let result = ctx.uf("alu", vec![op, operand]);
        let written = ctx.write(rf, dest, result);
        let next_pc = ctx.uf("pc_plus_4", vec![pc]);

        let mut next = SymbolicState::new();
        let pc_value = ctx.ite_term(fetch_enabled, next_pc, pc);
        let rf_value = ctx.ite_term(fetch_enabled, written, rf);
        next.set_term("pc", pc_value);
        next.set_term("rf", rf_value);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_state_match_the_specification() {
        for w in 2..=6 {
            let implementation = Ooo::new(w);
            assert_eq!(implementation.width(), w);
            assert_eq!(implementation.fetch_width(), w);
            assert_eq!(
                implementation.arch_state(),
                OooSpecification::new().arch_state()
            );
        }
    }

    #[test]
    fn step_produces_complete_states() {
        let implementation = Ooo::new(3);
        let mut ctx = Context::new();
        let initial = SymbolicState::initial(&mut ctx, &implementation.state_elements(), "");
        let enabled = ctx.true_id();
        let next = implementation.step(&mut ctx, &initial, enabled);
        assert!(next.contains("pc") && next.contains("rf"));
        let windows = implementation
            .completion_windows(&mut ctx, &initial, &next)
            .expect("windows provided");
        assert_eq!(windows.len(), 4);
        assert!(ctx.is_true(windows[3]));
    }
}
