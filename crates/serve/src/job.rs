//! Job specifications: what a client asks the service to verify, and how.
//!
//! A [`JobSpec`] names a design from the benchmark catalog ([`ModelRef`]), the
//! translation options, the back end ([`BackendChoice`]), the scheduling mode
//! ([`SolveMode`]), and per-job limits (priority, deadline, conflict budget).
//! Every field has a stable wire encoding (`key=value` tokens on one line) so
//! the same spec can be submitted in-process through
//! [`ServeHandle`](crate::ServeHandle) or over TCP through `velvc`.
//!
//! The *identity* of a job — the key of the verdict cache and of in-flight
//! deduplication — is **not** this description: it is the structural
//! fingerprint of the built correctness formula
//! ([`velv_core::problem_fingerprint`]) combined with the canonical encodings
//! of the options, back end and mode ([`JobSpec::salt`]).  Two differently
//! phrased submissions of structurally identical work therefore collide.

use std::fmt;
use std::time::Duration;
use velv_core::{CertifyOptions, TranslationOptions};
use velv_hdl::Processor;
use velv_models::dlx::{self, Dlx, DlxConfig, DlxSpecification};
use velv_models::ooo::{Ooo, OooSpecification};
use velv_models::vliw::{self, Vliw, VliwConfig, VliwSpecification};
use velv_sat::presets::SolverKind;

/// A parse error of a wire-encoded job, model or option field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseJobError {
    /// What could not be parsed, with the offending token.
    pub message: String,
}

impl fmt::Display for ParseJobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseJobError {}

fn parse_err(message: impl Into<String>) -> ParseJobError {
    ParseJobError {
        message: message.into(),
    }
}

/// A design from the benchmark catalog.
///
/// Wire syntax (see [`ModelRef::to_wire`]):
///
/// * `dlx1:correct`, `dlx2:bug:7`, `dlx2f:correct` — the DLX pipelines
///   (single issue, dual issue, dual issue + exceptions/branch prediction),
///   correct or with bug `i` of [`dlx::bug_catalog`];
/// * `vliw:correct`, `vliwx:bug:3` — the VLIW design (base / with
///   exceptions), correct or with bug `i` of [`vliw::bug_catalog`];
/// * `ooo:2` — the out-of-order core of the given width (correct design).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelRef {
    /// A DLX pipeline.
    Dlx {
        /// Which DLX configuration.
        config: DlxVariant,
        /// `None` for the correct design, `Some(i)` for catalog bug `i`.
        bug: Option<usize>,
    },
    /// The VLIW design.
    Vliw {
        /// Model precise exceptions.
        exceptions: bool,
        /// `None` for the correct design, `Some(i)` for catalog bug `i`.
        bug: Option<usize>,
    },
    /// The out-of-order core (correct design only).
    Ooo {
        /// Issue width.
        width: usize,
    },
}

/// The three DLX configurations of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DlxVariant {
    /// 1×DLX-C.
    Single,
    /// 2×DLX-CC.
    Dual,
    /// 2×DLX-CC-MC-EX-BP.
    DualFull,
}

impl DlxVariant {
    /// The matching [`DlxConfig`].
    pub fn config(self) -> DlxConfig {
        match self {
            DlxVariant::Single => DlxConfig::single_issue(),
            DlxVariant::Dual => DlxConfig::dual_issue(),
            DlxVariant::DualFull => DlxConfig::dual_issue_full(),
        }
    }

    fn token(self) -> &'static str {
        match self {
            DlxVariant::Single => "dlx1",
            DlxVariant::Dual => "dlx2",
            DlxVariant::DualFull => "dlx2f",
        }
    }
}

impl ModelRef {
    /// Shorthand for the correct single-issue DLX.
    pub fn dlx1_correct() -> Self {
        ModelRef::Dlx {
            config: DlxVariant::Single,
            bug: None,
        }
    }

    /// Shorthand for single-issue DLX catalog bug `i`.
    pub fn dlx1_bug(i: usize) -> Self {
        ModelRef::Dlx {
            config: DlxVariant::Single,
            bug: Some(i),
        }
    }

    /// Builds the implementation/specification pair.
    ///
    /// # Errors
    ///
    /// Fails when a bug index is out of range for the catalog.
    #[allow(clippy::type_complexity)]
    pub fn build(&self) -> Result<(Box<dyn Processor>, Box<dyn Processor>), ParseJobError> {
        match *self {
            ModelRef::Dlx { config, bug } => {
                let cfg = config.config();
                let implementation: Dlx = match bug {
                    None => Dlx::correct(cfg),
                    Some(i) => {
                        let catalog = dlx::bug_catalog(cfg);
                        let bug = *catalog.get(i).ok_or_else(|| {
                            parse_err(format!(
                                "dlx bug index {i} out of range (catalog has {})",
                                catalog.len()
                            ))
                        })?;
                        Dlx::buggy(cfg, bug)
                    }
                };
                Ok((
                    Box::new(implementation),
                    Box::new(DlxSpecification::new(cfg)),
                ))
            }
            ModelRef::Vliw { exceptions, bug } => {
                let cfg = if exceptions {
                    VliwConfig::with_exceptions()
                } else {
                    VliwConfig::base()
                };
                let implementation: Vliw = match bug {
                    None => Vliw::correct(cfg),
                    Some(i) => {
                        let catalog = vliw::bug_catalog(cfg);
                        let bug = *catalog.get(i).ok_or_else(|| {
                            parse_err(format!(
                                "vliw bug index {i} out of range (catalog has {})",
                                catalog.len()
                            ))
                        })?;
                        Vliw::buggy(cfg, bug)
                    }
                };
                Ok((
                    Box::new(implementation),
                    Box::new(VliwSpecification::new(cfg)),
                ))
            }
            ModelRef::Ooo { width } => {
                if width == 0 || width > 8 {
                    return Err(parse_err(format!("ooo width {width} out of range (1..=8)")));
                }
                Ok((Box::new(Ooo::new(width)), Box::new(OooSpecification::new())))
            }
        }
    }

    /// The wire encoding (see the type docs).
    pub fn to_wire(&self) -> String {
        match *self {
            ModelRef::Dlx { config, bug } => match bug {
                None => format!("{}:correct", config.token()),
                Some(i) => format!("{}:bug:{i}", config.token()),
            },
            ModelRef::Vliw { exceptions, bug } => {
                let base = if exceptions { "vliwx" } else { "vliw" };
                match bug {
                    None => format!("{base}:correct"),
                    Some(i) => format!("{base}:bug:{i}"),
                }
            }
            ModelRef::Ooo { width } => format!("ooo:{width}"),
        }
    }

    /// Parses the wire encoding.
    ///
    /// # Errors
    ///
    /// Fails on unknown designs or malformed bug/width fields.
    pub fn parse_wire(text: &str) -> Result<Self, ParseJobError> {
        let mut parts = text.split(':');
        let family = parts.next().unwrap_or("");
        let parse_bug =
            |parts: &mut std::str::Split<'_, char>| -> Result<Option<usize>, ParseJobError> {
                match parts.next() {
                    Some("correct") | None => Ok(None),
                    Some("bug") => {
                        let index = parts
                            .next()
                            .ok_or_else(|| parse_err(format!("missing bug index in `{text}`")))?;
                        index
                            .parse::<usize>()
                            .map(Some)
                            .map_err(|_| parse_err(format!("bad bug index in `{text}`")))
                    }
                    Some(other) => Err(parse_err(format!(
                        "unknown model field `{other}` in `{text}`"
                    ))),
                }
            };
        let model = match family {
            "dlx1" | "dlx2" | "dlx2f" => {
                let config = match family {
                    "dlx1" => DlxVariant::Single,
                    "dlx2" => DlxVariant::Dual,
                    _ => DlxVariant::DualFull,
                };
                ModelRef::Dlx {
                    config,
                    bug: parse_bug(&mut parts)?,
                }
            }
            "vliw" | "vliwx" => ModelRef::Vliw {
                exceptions: family == "vliwx",
                bug: parse_bug(&mut parts)?,
            },
            "ooo" => {
                let width = parts
                    .next()
                    .ok_or_else(|| parse_err(format!("missing ooo width in `{text}`")))?
                    .parse::<usize>()
                    .map_err(|_| parse_err(format!("bad ooo width in `{text}`")))?;
                ModelRef::Ooo { width }
            }
            other => return Err(parse_err(format!("unknown model family `{other}`"))),
        };
        if parts.next().is_some() {
            return Err(parse_err(format!("trailing model fields in `{text}`")));
        }
        Ok(model)
    }
}

impl fmt::Display for ModelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_wire())
    }
}

/// Which back end decides a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// A single SAT preset.
    Sat(SolverKind),
    /// The default portfolio (strong CDCL presets racing the BDD build).
    Portfolio,
    /// The BDD back end.
    Bdd,
}

impl BackendChoice {
    /// The wire token ("chaff", "portfolio", ...).
    pub fn to_wire(self) -> &'static str {
        match self {
            BackendChoice::Sat(SolverKind::Chaff) => "chaff",
            BackendChoice::Sat(SolverKind::BerkMin) => "berkmin",
            BackendChoice::Sat(SolverKind::Grasp) => "grasp",
            BackendChoice::Sat(SolverKind::Sato) => "sato",
            BackendChoice::Sat(SolverKind::Dpll) => "dpll",
            BackendChoice::Sat(SolverKind::WalkSat) => "walksat",
            BackendChoice::Sat(SolverKind::Dlm) => "dlm",
            BackendChoice::Portfolio => "portfolio",
            BackendChoice::Bdd => "bdd",
        }
    }

    /// Parses the wire token.
    ///
    /// # Errors
    ///
    /// Fails on unknown back-end names.
    pub fn parse_wire(text: &str) -> Result<Self, ParseJobError> {
        Ok(match text {
            "chaff" => BackendChoice::Sat(SolverKind::Chaff),
            "berkmin" => BackendChoice::Sat(SolverKind::BerkMin),
            "grasp" => BackendChoice::Sat(SolverKind::Grasp),
            "sato" => BackendChoice::Sat(SolverKind::Sato),
            "dpll" => BackendChoice::Sat(SolverKind::Dpll),
            "walksat" => BackendChoice::Sat(SolverKind::WalkSat),
            "dlm" => BackendChoice::Sat(SolverKind::Dlm),
            "portfolio" => BackendChoice::Portfolio,
            "bdd" => BackendChoice::Bdd,
            other => return Err(parse_err(format!("unknown backend `{other}`"))),
        })
    }
}

/// How the scheduler runs a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveMode {
    /// One monolithic correctness criterion, one back-end run.
    Monolithic,
    /// Decompose into at most `max_obligations` weak criteria and check them
    /// all on one shared incremental session
    /// ([`velv_core::Verifier::translate_obligations_shared`]).
    Decomposed {
        /// Obligation cap passed to the decomposition.
        max_obligations: usize,
    },
}

impl SolveMode {
    fn to_wire(self) -> String {
        match self {
            SolveMode::Monolithic => "mono".to_owned(),
            SolveMode::Decomposed { max_obligations } => format!("decomposed:{max_obligations}"),
        }
    }

    fn parse_wire(text: &str) -> Result<Self, ParseJobError> {
        if text == "mono" {
            return Ok(SolveMode::Monolithic);
        }
        if let Some(max) = text.strip_prefix("decomposed:") {
            return max
                .parse::<usize>()
                .map(|max_obligations| SolveMode::Decomposed { max_obligations })
                .map_err(|_| parse_err(format!("bad decomposition bound in `{text}`")));
        }
        Err(parse_err(format!("unknown mode `{text}`")))
    }
}

/// A verification job as submitted to the service.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The design to verify.
    pub model: ModelRef,
    /// Translation options.
    pub options: TranslationOptions,
    /// Back end deciding the job.
    pub backend: BackendChoice,
    /// Scheduling mode.
    pub mode: SolveMode,
    /// Certify the verdict (DRAT proof replay / counterexample validation,
    /// see [`CertifyOptions`]); forces a CDCL back end.
    pub certified: bool,
    /// Keep the DRAT proof of an uncertified UNSAT verdict as a cache
    /// artifact (eager monolithic CDCL jobs only; retrieved with the `proof`
    /// wire command).
    pub keep_proof: bool,
    /// Scheduling priority: higher runs first.
    pub priority: i32,
    /// Deadline, measured from submission.
    pub timeout: Option<Duration>,
    /// Conflict budget for the back end.
    pub max_conflicts: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            model: ModelRef::dlx1_correct(),
            options: TranslationOptions::default(),
            backend: BackendChoice::Sat(SolverKind::Chaff),
            mode: SolveMode::Monolithic,
            certified: false,
            keep_proof: false,
            priority: 0,
            timeout: None,
            max_conflicts: None,
        }
    }
}

impl JobSpec {
    /// A default (chaff, monolithic) job for a model.
    pub fn new(model: ModelRef) -> Self {
        JobSpec {
            model,
            ..JobSpec::default()
        }
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the submission-relative deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// The certify configuration of a certified job.
    pub fn certify_options(&self) -> CertifyOptions {
        CertifyOptions::full()
    }

    /// The canonical *identity salt* of everything the structural problem
    /// fingerprint does not already cover: combined with
    /// [`velv_core::problem_fingerprint`] (which folds in the translation
    /// options), it keys the verdict cache.  Scheduling-only fields
    /// (priority, deadline, conflict budget) are deliberately excluded —
    /// they change when an answer is wanted, not what the answer is.
    pub fn salt(&self) -> String {
        format!(
            "backend={};mode={};certified={};proof={}",
            self.backend.to_wire(),
            self.mode.to_wire(),
            u8::from(self.certified),
            u8::from(self.keep_proof),
        )
    }

    /// The one-line wire encoding (`key=value` tokens, space-separated).
    pub fn to_wire(&self) -> String {
        let mut line = format!(
            "model={} backend={} mode={} options={}",
            self.model.to_wire(),
            self.backend.to_wire(),
            self.mode.to_wire(),
            options_to_wire(&self.options),
        );
        if self.certified {
            line.push_str(" certified=1");
        }
        if self.keep_proof {
            line.push_str(" keep-proof=1");
        }
        if self.priority != 0 {
            line.push_str(&format!(" priority={}", self.priority));
        }
        if let Some(timeout) = self.timeout {
            line.push_str(&format!(" timeout-ms={}", timeout.as_millis()));
        }
        if let Some(max) = self.max_conflicts {
            line.push_str(&format!(" max-conflicts={max}"));
        }
        line
    }

    /// Parses the one-line wire encoding.
    ///
    /// # Errors
    ///
    /// Fails on missing `model=`, unknown keys, or malformed values.
    pub fn parse_wire(line: &str) -> Result<Self, ParseJobError> {
        let mut spec = JobSpec::default();
        let mut saw_model = false;
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| parse_err(format!("expected key=value, got `{token}`")))?;
            match key {
                "model" => {
                    spec.model = ModelRef::parse_wire(value)?;
                    saw_model = true;
                }
                "backend" => spec.backend = BackendChoice::parse_wire(value)?,
                "mode" => spec.mode = SolveMode::parse_wire(value)?,
                "options" => spec.options = options_parse_wire(value)?,
                "certified" => spec.certified = parse_flag(key, value)?,
                "keep-proof" => spec.keep_proof = parse_flag(key, value)?,
                "priority" => {
                    spec.priority = value
                        .parse()
                        .map_err(|_| parse_err(format!("bad priority `{value}`")))?;
                }
                "timeout-ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| parse_err(format!("bad timeout-ms `{value}`")))?;
                    spec.timeout = Some(Duration::from_millis(ms));
                }
                "max-conflicts" => {
                    spec.max_conflicts = Some(
                        value
                            .parse()
                            .map_err(|_| parse_err(format!("bad max-conflicts `{value}`")))?,
                    );
                }
                other => return Err(parse_err(format!("unknown job key `{other}`"))),
            }
        }
        if !saw_model {
            return Err(parse_err("job line is missing `model=`"));
        }
        Ok(spec)
    }
}

fn parse_flag(key: &str, value: &str) -> Result<bool, ParseJobError> {
    match value {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(parse_err(format!("bad flag {key}={other} (want 0 or 1)"))),
    }
}

/// The wire encoding of the translation options: `pe:1,enc:eij,...`.  The
/// conservative-approximation lists (`abstract_memories`,
/// `translation_boxes`) are in-process-only and not wire-encodable.
fn options_to_wire(options: &TranslationOptions) -> String {
    use velv_core::{GEncoding, TransitivityMode, UpElimination};
    format!(
        "pe:{},enc:{},trans:{},up:{},er:{}",
        u8::from(options.positive_equality),
        match options.encoding {
            GEncoding::Eij => "eij",
            GEncoding::SmallDomain => "sd",
        },
        match options.transitivity {
            TransitivityMode::Eager => "eager",
            TransitivityMode::Lazy => "lazy",
        },
        match options.up_elimination {
            UpElimination::NestedIte => "ite",
            UpElimination::Ackermann => "ack",
        },
        u8::from(options.early_reduction),
    )
}

fn options_parse_wire(text: &str) -> Result<TranslationOptions, ParseJobError> {
    use velv_core::{GEncoding, TransitivityMode, UpElimination};
    let mut options = TranslationOptions::default();
    for field in text.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| parse_err(format!("expected key:value option, got `{field}`")))?;
        match key {
            "pe" => options.positive_equality = parse_flag(key, value)?,
            "er" => options.early_reduction = parse_flag(key, value)?,
            "enc" => {
                options.encoding = match value {
                    "eij" => GEncoding::Eij,
                    "sd" => GEncoding::SmallDomain,
                    other => return Err(parse_err(format!("unknown encoding `{other}`"))),
                }
            }
            "trans" => {
                options.transitivity = match value {
                    "eager" => TransitivityMode::Eager,
                    "lazy" => TransitivityMode::Lazy,
                    other => return Err(parse_err(format!("unknown transitivity `{other}`"))),
                }
            }
            "up" => {
                options.up_elimination = match value {
                    "ite" => UpElimination::NestedIte,
                    "ack" => UpElimination::Ackermann,
                    other => return Err(parse_err(format!("unknown up-elimination `{other}`"))),
                }
            }
            other => return Err(parse_err(format!("unknown option key `{other}`"))),
        }
    }
    Ok(options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_wire_round_trips() {
        let models = [
            ModelRef::dlx1_correct(),
            ModelRef::dlx1_bug(3),
            ModelRef::Dlx {
                config: DlxVariant::DualFull,
                bug: Some(12),
            },
            ModelRef::Vliw {
                exceptions: true,
                bug: None,
            },
            ModelRef::Vliw {
                exceptions: false,
                bug: Some(1),
            },
            ModelRef::Ooo { width: 2 },
        ];
        for model in models {
            let wire = model.to_wire();
            assert_eq!(ModelRef::parse_wire(&wire), Ok(model), "{wire}");
        }
        assert!(ModelRef::parse_wire("z80:correct").is_err());
        assert!(ModelRef::parse_wire("dlx1:bug").is_err());
        assert!(ModelRef::parse_wire("dlx1:bug:x").is_err());
        assert!(ModelRef::parse_wire("ooo:first").is_err());
        assert!(ModelRef::parse_wire("dlx1:correct:extra").is_err());
    }

    #[test]
    fn job_wire_round_trips() {
        let mut spec = JobSpec::new(ModelRef::dlx1_bug(2));
        spec.backend = BackendChoice::Portfolio;
        spec.mode = SolveMode::Decomposed { max_obligations: 8 };
        spec.options = TranslationOptions::default().with_lazy_transitivity();
        spec.certified = true;
        spec.priority = -3;
        spec.timeout = Some(Duration::from_millis(1500));
        spec.max_conflicts = Some(10_000);
        let line = spec.to_wire();
        assert_eq!(JobSpec::parse_wire(&line).unwrap(), spec, "{line}");

        let minimal = JobSpec::parse_wire("model=dlx1:correct").unwrap();
        assert_eq!(minimal, JobSpec::default());
        assert!(
            JobSpec::parse_wire("backend=chaff").is_err(),
            "model required"
        );
        assert!(JobSpec::parse_wire("model=dlx1:correct frob=1").is_err());
    }

    #[test]
    fn salt_excludes_scheduling_fields() {
        let a = JobSpec::new(ModelRef::dlx1_correct()).with_priority(7);
        let b = JobSpec::new(ModelRef::dlx1_correct()).with_timeout(Duration::from_secs(1));
        assert_eq!(a.salt(), b.salt());
        let mut c = JobSpec::new(ModelRef::dlx1_correct());
        c.backend = BackendChoice::Sat(SolverKind::Sato);
        assert_ne!(a.salt(), c.salt());
        let mut d = JobSpec::new(ModelRef::dlx1_correct());
        d.certified = true;
        assert_ne!(a.salt(), d.salt());
    }

    #[test]
    fn build_rejects_out_of_range_indices() {
        assert!(ModelRef::dlx1_bug(10_000).build().is_err());
        assert!(ModelRef::Ooo { width: 0 }.build().is_err());
        assert!(ModelRef::dlx1_correct().build().is_ok());
    }
}
