//! The verification service: a bounded worker pool over a priority queue,
//! fronted by the fingerprint-keyed verdict cache and in-flight
//! deduplication.
//!
//! Life of a submission:
//!
//! 1. [`ServeHandle::submit`] builds the Burch–Dill problem for the job's
//!    model and computes its structural fingerprint
//!    ([`velv_core::problem_fingerprint`] + [`JobSpec::salt`]).  This happens
//!    *before* any translation or solving.
//! 2. The **verdict cache** is consulted: a hit resolves the ticket
//!    immediately — no translation, no solver.
//! 3. The **in-flight table** is consulted: if a job with the same
//!    fingerprint is already queued or running, the new ticket *subscribes*
//!    to that job's result instead of scheduling a second solve.
//! 4. Otherwise the job enters the priority queue (higher priority first,
//!    FIFO within a priority) and a worker picks it up: translate, solve
//!    under the job's budget (deadline measured from submission, conflict
//!    cap, and a per-job cancel token), certify if asked, store the decided
//!    verdict in the cache, and wake every subscriber.
//!
//! **Batch submission** ([`ServeHandle::submit_batch`]) additionally groups
//! compatible jobs (monolithic mode, the same options and CDCL back end) into
//! one scheduled unit that is translated by
//! [`velv_core::Verifier::translate_batch_shared`] into a single shared
//! definitional CNF and decided by *one* persistent incremental solver under
//! per-entry assumptions and per-entry budgets — the catalog-sweep analogue
//! of the shared-decomposition path.
//!
//! Every ticket holds a waiter count; when the last ticket of a job is
//! dropped before the job finishes (all clients disconnected), the job's
//! cancel token is raised and the workers abandon it from their solver hot
//! loops.  [`ServeHandle::shutdown`] (also triggered by dropping the last
//! handle) raises every in-flight token, joins the workers, and resolves
//! whatever was still queued as cancelled.

use crate::cache::{CacheStats, CachedVerdict, VerdictCache};
use crate::job::{BackendChoice, JobSpec, ParseJobError, SolveMode};
use crate::persist;
use crate::proto::TraceContext;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use velv_core::{
    Backend, Certificate, Counterexample, Translation, TranslationStats, Verdict,
    VerificationProblem, Verifier,
};
use velv_eufm::Fingerprint;
use velv_sat::cdcl::CdclConfig;
use velv_sat::presets::SolverKind;
use velv_sat::{Budget, CancelToken, IncrementalSolver, SatResult, Solver};

/// Builds a replacement engine for monolithic uncertified jobs; a test and
/// extension hook (e.g. plugging a custom engine into a service instance).
pub type EngineOverride = Arc<dyn Fn() -> Box<dyn Solver + Send> + Send + Sync>;

/// Configuration of one service instance.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Total verdict-cache budget in bytes.
    pub cache_bytes: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Deadline applied to jobs that do not carry their own timeout.
    pub default_timeout: Option<Duration>,
    /// When set, monolithic uncertified jobs use this engine instead of the
    /// back end named in their spec.
    pub engine_override: Option<EngineOverride>,
    /// When set, every decided verdict is appended to a crash-safe
    /// [`velv_store::Store`] in this directory *before* the response is
    /// delivered, and startup replays the log to warm the verdict cache.
    pub store_dir: Option<PathBuf>,
    /// Durability point of store appends (`always` by default: a delivered
    /// verdict survives power loss).
    pub store_fsync: velv_store::FsyncPolicy,
    /// Failpoints instance threaded into the store (fault-injection tests).
    pub store_failpoints: Option<Arc<velv_store::Failpoints>>,
    /// Bound on jobs waiting in the queue.  When the queue is full, a new
    /// submission sheds the lowest-priority queued job if it outranks it
    /// (the victim resolves as `unknown` with a busy reason), and is
    /// otherwise rejected with [`ServeError::Busy`].  `None` = unbounded.
    pub max_queue_depth: Option<usize>,
    /// Cap on the jobs one client (one connection) may have in flight at
    /// once — enforced by the TCP front end on batch submissions, the only
    /// way a single connection creates concurrent jobs.  `0` = unlimited.
    pub per_client_quota: usize,
    /// Service-level objective on submission-to-result latency: a completed
    /// job whose wall time is within this target counts toward attainment.
    /// The target, the attainment and the burn (both in permille) are
    /// exported as gauges through the registry.
    pub slo_target: Duration,
    /// When set, every fresh single-job solve is profiled: a solve recorder
    /// rides the solver's heartbeats, this sink (which the host must also
    /// install as the process trace sink, teeing into any file sink) folds
    /// the job's spans into a phase tree, and the combined
    /// [`velv_obs::SolveProfile`] is cached and persisted next to the
    /// verdict, served by the `profile` wire verb.
    pub profile_sink: Option<Arc<velv_obs::ProfileSink>>,
    /// Live-heap ceiling in bytes (measured by the counting allocator, so it
    /// only engages when the host installed [`velv_obs::CountingAlloc`] —
    /// `velvd --mem-limit`).  Approaching the ceiling trips staged
    /// degradation: at 60% the verdict cache shrinks to a quarter of its
    /// budget, at 80% the lower-priority half of the queue is shed, at 95%
    /// fresh submissions are refused as busy (cache hits and dedup joins are
    /// still served).  The first trip dumps the flight recorder.  `None`
    /// disables the ladder.
    pub mem_limit: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2);
        ServiceConfig {
            workers,
            cache_bytes: 64 << 20,
            cache_shards: 8,
            default_timeout: None,
            engine_override: None,
            store_dir: None,
            store_fsync: velv_store::FsyncPolicy::Always,
            store_failpoints: None,
            max_queue_depth: None,
            per_client_quota: 0,
            slo_target: Duration::from_secs(1),
            profile_sink: None,
            mem_limit: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the cache byte budget.
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the latency SLO target.
    pub fn with_slo_target(mut self, target: Duration) -> Self {
        self.slo_target = target;
        self
    }

    /// Enables per-job solve profiling through `sink` (which the host must
    /// also install as the process trace sink).
    pub fn with_profile_sink(mut self, sink: Arc<velv_obs::ProfileSink>) -> Self {
        self.profile_sink = Some(sink);
        self
    }

    /// Sets the live-heap ceiling that arms the memory-pressure ladder.
    pub fn with_mem_limit(mut self, bytes: u64) -> Self {
        self.mem_limit = Some(bytes);
        self
    }
}

/// Maps live heap bytes to a memory-pressure level under `limit`: 0 below
/// 60% of the ceiling, 1 (shrink the verdict cache) at 60%, 2 (shed queued
/// work) at 80%, 3 (refuse fresh submissions) at 95%.  Pure so the ladder's
/// thresholds are unit-testable without an allocator or a service.
pub fn pressure_level(live_bytes: u64, limit: u64) -> u64 {
    if limit == 0 {
        return 0;
    }
    let live = live_bytes as u128 * 100;
    let limit = limit as u128;
    if live >= limit * 95 {
        3
    } else if live >= limit * 80 {
        2
    } else if live >= limit * 60 {
        1
    } else {
        0
    }
}

/// The scheduling class of a priority value — the `class` label of the
/// per-class latency histograms and the class column of the live progress
/// rows.  Positive priorities are `high`, zero is `normal`, negative is
/// `low`.
pub fn priority_class(priority: i32) -> &'static str {
    match priority.cmp(&0) {
        std::cmp::Ordering::Greater => "high",
        std::cmp::Ordering::Equal => "normal",
        std::cmp::Ordering::Less => "low",
    }
}

/// Why a submission was rejected.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The service has been shut down.
    ShutDown,
    /// The job specification is invalid (bad model reference, ...).
    InvalidJob(ParseJobError),
    /// The service is overloaded: the queue is full and the submission does
    /// not outrank any queued job.  Retry later; nothing was scheduled.
    Busy(String),
    /// The verdict store could not be opened or replayed at startup.
    Store(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ShutDown => write!(f, "the service has been shut down"),
            ServeError::InvalidJob(e) => write!(f, "invalid job: {e}"),
            ServeError::Busy(reason) => write!(f, "busy: {reason}"),
            ServeError::Store(e) => write!(f, "verdict store failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Scheduling state of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the priority queue.
    Queued,
    /// A worker is translating/solving it.
    Running,
    /// The result is available.
    Done,
}

/// The delivered outcome of a job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The design name of the job.
    pub name: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Whether the verdict came straight from the cache (no translation, no
    /// solver).
    pub from_cache: bool,
    /// Whether this ticket subscribed to another in-flight submission of the
    /// same fingerprint.
    pub deduplicated: bool,
    /// Submission-to-result latency for this ticket.
    pub wall: Duration,
    /// Translation + solve time actually spent (zero for cache hits; for
    /// batch entries, the batch total split evenly across its entries).
    pub solve_time: Duration,
    /// Certificate of a certified run.
    pub certificate: Option<Certificate>,
}

struct JobSlot {
    result: Option<JobResult>,
    status: JobStatus,
}

/// Shared state of one scheduled job (or one cache-hit pseudo-job).
struct JobState {
    fingerprint: Fingerprint,
    name: String,
    /// Scheduling priority of the originating spec — the class label of the
    /// per-class latency histograms.
    priority: i32,
    submitted: Instant,
    cancel: CancelToken,
    waiters: AtomicU64,
    slot: Mutex<JobSlot>,
    done: Condvar,
}

impl JobState {
    fn new(fingerprint: Fingerprint, name: String, priority: i32) -> Self {
        JobState {
            fingerprint,
            name,
            priority,
            submitted: Instant::now(),
            cancel: CancelToken::new(),
            waiters: AtomicU64::new(0),
            slot: Mutex::new(JobSlot {
                result: None,
                status: JobStatus::Queued,
            }),
            done: Condvar::new(),
        }
    }

    fn set_status(&self, status: JobStatus) {
        self.slot.lock().expect("job slot lock").status = status;
    }

    /// Whether a result has already been delivered (a queued job in this
    /// state was shed by admission control; workers skip it).
    fn is_resolved(&self) -> bool {
        self.slot.lock().expect("job slot lock").result.is_some()
    }

    fn resolve(&self, result: JobResult) {
        let mut slot = self.slot.lock().expect("job slot lock");
        if slot.result.is_none() {
            slot.result = Some(result);
            slot.status = JobStatus::Done;
            self.done.notify_all();
        }
    }
}

/// A claim on a job's result.
///
/// Tickets are handed out by [`ServeHandle::submit`]/
/// [`ServeHandle::submit_batch`]; several tickets may share one underlying
/// job (deduplicated submissions).  Dropping the *last* ticket of an
/// unfinished job raises the job's cancel token — a disconnected client does
/// not keep workers busy.
pub struct JobTicket {
    state: Arc<JobState>,
    /// This ticket subscribed to an already in-flight identical job.
    joined: bool,
}

impl JobTicket {
    fn subscribe(state: &Arc<JobState>, joined: bool) -> JobTicket {
        state.waiters.fetch_add(1, Ordering::SeqCst);
        JobTicket {
            state: Arc::clone(state),
            joined,
        }
    }

    /// The underlying job's result is shared by every subscriber; stamp this
    /// ticket's own view of how it was admitted.
    fn stamp(&self, mut result: JobResult) -> JobResult {
        result.deduplicated = self.joined;
        result
    }

    /// The job's structural fingerprint (the cache/deduplication key).
    pub fn fingerprint(&self) -> Fingerprint {
        self.state.fingerprint
    }

    /// The job's scheduling state.
    pub fn status(&self) -> JobStatus {
        self.state.slot.lock().expect("job slot lock").status
    }

    /// Blocks until the result is available.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.state.slot.lock().expect("job slot lock");
        loop {
            if let Some(result) = &slot.result {
                return self.stamp(result.clone());
            }
            slot = self.state.done.wait(slot).expect("job slot lock");
        }
    }

    /// Waits for at most `timeout`; `None` when the job is still unfinished.
    pub fn wait_for(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().expect("job slot lock");
        loop {
            if let Some(result) = &slot.result {
                return Some(self.stamp(result.clone()));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .state
                .done
                .wait_timeout(slot, deadline - now)
                .expect("job slot lock");
            slot = next;
        }
    }

    /// The result, if already available.
    pub fn try_result(&self) -> Option<JobResult> {
        self.state
            .slot
            .lock()
            .expect("job slot lock")
            .result
            .clone()
            .map(|result| self.stamp(result))
    }

    /// Explicitly abandons this claim: equivalent to dropping the ticket.
    pub fn cancel(self) {
        drop(self);
    }
}

impl Drop for JobTicket {
    fn drop(&mut self) {
        if self.state.waiters.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last client gone: if the job has not produced a result yet,
            // tell the workers to stop burning cycles on it.
            let unfinished = self
                .state
                .slot
                .lock()
                .expect("job slot lock")
                .result
                .is_none();
            if unfinished {
                self.state.cancel.cancel();
            }
        }
    }
}

/// One unit of scheduled work.
struct SingleJob {
    spec: JobSpec,
    problem: VerificationProblem,
    deadline: Option<Instant>,
    state: Arc<JobState>,
    /// The submitting client's trace context: the worker's `serve.job` span
    /// is tagged with it so a merged multi-process trace parents the span
    /// under the client's root span.
    trace: Option<TraceContext>,
}

enum WorkItem {
    Single(Box<SingleJob>),
    /// A group of compatible jobs decided on one shared incremental session.
    Batch(Vec<SingleJob>),
}

impl WorkItem {
    fn priority(&self) -> i32 {
        match self {
            WorkItem::Single(job) => job.spec.priority,
            WorkItem::Batch(jobs) => jobs.iter().map(|j| j.spec.priority).max().unwrap_or(0),
        }
    }

    fn job_count(&self) -> u64 {
        match self {
            WorkItem::Single(_) => 1,
            WorkItem::Batch(jobs) => jobs.len() as u64,
        }
    }

    fn states(&self) -> Vec<Arc<JobState>> {
        match self {
            WorkItem::Single(job) => vec![Arc::clone(&job.state)],
            WorkItem::Batch(jobs) => jobs.iter().map(|j| Arc::clone(&j.state)).collect(),
        }
    }

    /// Jobs of this item that still owe a result (not shed while queued).
    fn unresolved_count(&self) -> u64 {
        match self {
            WorkItem::Single(job) => u64::from(!job.state.is_resolved()),
            WorkItem::Batch(jobs) => jobs.iter().filter(|j| !j.state.is_resolved()).count() as u64,
        }
    }
}

struct QueuedItem {
    priority: i32,
    seq: u64,
    item: WorkItem,
}

impl PartialEq for QueuedItem {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueuedItem {}
impl PartialOrd for QueuedItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then FIFO by sequence number.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Upper bucket bounds of the per-job wall-time histogram: 1ms to 60s.
const JOB_WALL_BOUNDS: &[u64] = &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000];

/// One histogram family labelled by scheduling class (`high`/`normal`/`low`),
/// registered with the fine log-bucketed bounds so class percentiles stay
/// meaningful from microseconds to minutes.
struct ClassHistograms {
    high: velv_obs::Histogram,
    normal: velv_obs::Histogram,
    low: velv_obs::Histogram,
}

impl ClassHistograms {
    fn new(registry: &velv_obs::Registry, name: &str, help: &str) -> ClassHistograms {
        let bounds = velv_obs::log_bucket_bounds();
        let labelled =
            |class: &str| registry.histogram_with(name, &[("class", class)], help, bounds);
        ClassHistograms {
            high: labelled("high"),
            normal: labelled("normal"),
            low: labelled("low"),
        }
    }

    fn for_priority(&self, priority: i32) -> &velv_obs::Histogram {
        match priority_class(priority) {
            "high" => &self.high,
            "low" => &self.low,
            _ => &self.normal,
        }
    }

    fn observe(&self, priority: i32, value: u64) {
        self.for_priority(priority).observe(value);
    }

    /// The three class snapshots pooled into one (identical bounds by
    /// construction) — the overall distribution the percentile gauges are
    /// derived from.
    fn merged_snapshot(&self) -> velv_obs::HistogramSnapshot {
        let mut merged = self.high.snapshot();
        for other in [self.normal.snapshot(), self.low.snapshot()] {
            for (count, extra) in merged.counts.iter_mut().zip(&other.counts) {
                *count += extra;
            }
            merged.count += other.count;
            merged.sum += other.sum;
        }
        merged
    }
}

/// The service's metric handles, registered on the per-service
/// [`Registry`](velv_obs::Registry) — the registry snapshot *is* the wire
/// `stats` payload, so every counter below is automatically served.
struct Counters {
    submitted: velv_obs::Counter,
    batch_entries: velv_obs::Counter,
    batch_groups: velv_obs::Counter,
    completed: velv_obs::Counter,
    cache_hits: velv_obs::Counter,
    dedup_joins: velv_obs::Counter,
    translations: velv_obs::Counter,
    fresh_solves: velv_obs::Counter,
    correct: velv_obs::Counter,
    buggy: velv_obs::Counter,
    unknown: velv_obs::Counter,
    cancelled: velv_obs::Counter,
    proofs_kept: velv_obs::Counter,
    shed: velv_obs::Counter,
    busy_rejections: velv_obs::Counter,
    quota_rejections: velv_obs::Counter,
    worker_panics: velv_obs::Counter,
    persisted: velv_obs::Counter,
    persist_errors: velv_obs::Counter,
    replayed: velv_obs::Counter,
    replay_skipped: velv_obs::Counter,
    queued: velv_obs::Gauge,
    running: velv_obs::Gauge,
    workers: velv_obs::Gauge,
    workers_busy: velv_obs::Gauge,
    solve_micros: velv_obs::Counter,
    wall_micros: velv_obs::Counter,
    job_wall_micros: velv_obs::Histogram,
    queue_wait: ClassHistograms,
    job_wall_class: ClassHistograms,
    job_wall_p50: velv_obs::Gauge,
    job_wall_p95: velv_obs::Gauge,
    job_wall_p99: velv_obs::Gauge,
    slo_within: velv_obs::Counter,
    slo_missed: velv_obs::Counter,
    slo_target_micros: velv_obs::Gauge,
    slo_attainment_permille: velv_obs::Gauge,
    slo_burn_permille: velv_obs::Gauge,
    cache_entries: velv_obs::Gauge,
    cache_bytes: velv_obs::Gauge,
    cache_capacity_bytes: velv_obs::Gauge,
    mem_live_bytes: velv_obs::Gauge,
    mem_peak_bytes: velv_obs::Gauge,
    mem_rss_peak_bytes: velv_obs::Gauge,
    mem_limit_bytes: velv_obs::Gauge,
    mem_pressure_level: velv_obs::Gauge,
    mem_pressure_trips: velv_obs::Counter,
    mem_pressure_rejections: velv_obs::Counter,
    /// Per-scope `(live, peak)` gauges, aligned with
    /// [`velv_obs::mem::SCOPE_NAMES`].
    mem_scopes: Vec<(velv_obs::Gauge, velv_obs::Gauge)>,
    mem_measured_cache_bytes: velv_obs::Gauge,
    mem_measured_queue_bytes: velv_obs::Gauge,
    mem_measured_store_index_bytes: velv_obs::Gauge,
}

impl Counters {
    fn new(registry: &velv_obs::Registry) -> Counters {
        Counters {
            submitted: registry.counter(
                "velv_serve_jobs_submitted_total",
                "Jobs submitted (batch entries and cached/deduplicated ones included).",
            ),
            batch_entries: registry.counter(
                "velv_serve_batch_entries_total",
                "Jobs submitted through the batch endpoint.",
            ),
            batch_groups: registry.counter(
                "velv_serve_batch_groups_total",
                "Batch groups scheduled as one shared incremental session.",
            ),
            completed: registry.counter(
                "velv_serve_jobs_completed_total",
                "Jobs whose result was delivered.",
            ),
            cache_hits: registry.counter(
                "velv_serve_cache_hits_total",
                "Submissions answered straight from the verdict cache.",
            ),
            dedup_joins: registry.counter(
                "velv_serve_dedup_joins_total",
                "Submissions that subscribed to an in-flight identical job.",
            ),
            translations: registry.counter(
                "velv_serve_translations_total",
                "Translations started (cache hits and dedup joins start none).",
            ),
            fresh_solves: registry.counter(
                "velv_serve_fresh_solves_total",
                "Back-end solve runs started.",
            ),
            correct: registry.counter(
                "velv_serve_verdict_correct_total",
                "Verdicts: correct designs.",
            ),
            buggy: registry.counter(
                "velv_serve_verdict_buggy_total",
                "Verdicts: buggy designs (counterexample produced).",
            ),
            unknown: registry.counter(
                "velv_serve_verdict_unknown_total",
                "Verdicts: undecided (timeout, cancellation, resource limits).",
            ),
            cancelled: registry.counter(
                "velv_serve_cancelled_total",
                "Jobs abandoned by client disconnect or service shutdown.",
            ),
            proofs_kept: registry.counter(
                "velv_serve_proofs_kept_total",
                "DRAT proof artifacts stored in the cache.",
            ),
            shed: registry.counter(
                "velv_serve_jobs_shed_total",
                "Queued jobs shed under overload in favour of higher-priority work.",
            ),
            busy_rejections: registry.counter(
                "velv_serve_busy_rejections_total",
                "Submissions rejected as busy (queue full, no lower-priority victim).",
            ),
            quota_rejections: registry.counter(
                "velv_serve_quota_rejections_total",
                "Submissions rejected by the per-client in-flight quota.",
            ),
            worker_panics: registry.counter(
                "velv_serve_worker_panics_total",
                "Worker panics contained by the pool (the job resolves as unknown).",
            ),
            persisted: registry.counter(
                "velv_serve_verdicts_persisted_total",
                "Decided verdicts appended to the crash-safe store.",
            ),
            persist_errors: registry.counter(
                "velv_serve_persist_errors_total",
                "Store appends that failed (the verdict was still delivered).",
            ),
            replayed: registry.counter(
                "velv_serve_warm_boot_replayed_total",
                "Verdicts replayed from the store into the cache at startup.",
            ),
            replay_skipped: registry.counter(
                "velv_serve_warm_boot_skipped_total",
                "Store records skipped at startup (undecodable or undecided).",
            ),
            queued: registry.gauge(
                "velv_serve_jobs_queued",
                "Jobs currently waiting in the queue.",
            ),
            running: registry.gauge("velv_serve_jobs_running", "Jobs currently being worked on."),
            workers: registry.gauge("velv_serve_workers", "Worker threads in the pool."),
            workers_busy: registry.gauge(
                "velv_serve_workers_busy",
                "Worker threads currently running a work item.",
            ),
            solve_micros: registry.counter(
                "velv_serve_solve_micros_total",
                "Total translation+solve time spent by workers, in microseconds.",
            ),
            wall_micros: registry.counter(
                "velv_serve_wall_micros_total",
                "Total submission-to-result latency over completed jobs, in microseconds.",
            ),
            job_wall_micros: registry.histogram(
                "velv_serve_job_wall_micros",
                "Submission-to-result latency per completed job, in microseconds.",
                JOB_WALL_BOUNDS,
            ),
            queue_wait: ClassHistograms::new(
                registry,
                "velv_serve_queue_wait_micros",
                "Queue wait (submission to dequeue) per job, in microseconds.",
            ),
            job_wall_class: ClassHistograms::new(
                registry,
                "velv_serve_job_wall_class_micros",
                "Submission-to-result latency per completed job by scheduling class, in microseconds.",
            ),
            job_wall_p50: registry.gauge(
                "velv_serve_job_wall_p50_micros",
                "Estimated median submission-to-result latency, in microseconds.",
            ),
            job_wall_p95: registry.gauge(
                "velv_serve_job_wall_p95_micros",
                "Estimated 95th-percentile submission-to-result latency, in microseconds.",
            ),
            job_wall_p99: registry.gauge(
                "velv_serve_job_wall_p99_micros",
                "Estimated 99th-percentile submission-to-result latency, in microseconds.",
            ),
            slo_within: registry.counter(
                "velv_serve_slo_within_total",
                "Completed jobs whose wall time met the latency SLO target.",
            ),
            slo_missed: registry.counter(
                "velv_serve_slo_missed_total",
                "Completed jobs whose wall time exceeded the latency SLO target.",
            ),
            slo_target_micros: registry.gauge(
                "velv_serve_slo_target_micros",
                "Configured latency SLO target, in microseconds.",
            ),
            slo_attainment_permille: registry.gauge(
                "velv_serve_slo_attainment_permille",
                "Share of completed jobs meeting the SLO target, in permille.",
            ),
            slo_burn_permille: registry.gauge(
                "velv_serve_slo_burn_permille",
                "Share of completed jobs missing the SLO target, in permille.",
            ),
            cache_entries: registry.gauge(
                "velv_serve_cache_entries",
                "Verdict-cache entries currently resident.",
            ),
            cache_bytes: registry.gauge(
                "velv_serve_cache_bytes",
                "Verdict-cache bytes currently charged.",
            ),
            cache_capacity_bytes: registry.gauge(
                "velv_serve_cache_capacity_bytes",
                "Verdict-cache total byte budget.",
            ),
            mem_live_bytes: registry.gauge(
                "velv_mem_live_bytes",
                "Live heap bytes reported by the counting allocator (0 when not installed).",
            ),
            mem_peak_bytes: registry.gauge(
                "velv_mem_peak_bytes",
                "High-water mark of live heap bytes since process start (or the last reset).",
            ),
            mem_rss_peak_bytes: registry.gauge(
                "velv_mem_rss_peak_bytes",
                "Peak resident-set size of the process (VmHWM), in bytes.",
            ),
            mem_limit_bytes: registry.gauge(
                "velv_mem_limit_bytes",
                "Configured live-heap ceiling arming the pressure ladder (0 = disabled).",
            ),
            mem_pressure_level: registry.gauge(
                "velv_mem_pressure_level",
                "Memory-pressure level: 0 none, 1 cache shrunk, 2 queue shed, 3 refusing fresh work.",
            ),
            mem_pressure_trips: registry.counter(
                "velv_mem_pressure_trips_total",
                "Transitions from no memory pressure to any pressure level.",
            ),
            mem_pressure_rejections: registry.counter(
                "velv_mem_pressure_rejections_total",
                "Fresh submissions refused as busy at pressure level 3.",
            ),
            mem_scopes: velv_obs::mem::SCOPE_NAMES
                .iter()
                .map(|scope| {
                    (
                        registry.gauge_with(
                            "velv_mem_scope_live_bytes",
                            &[("scope", scope)],
                            "Live heap bytes attributed to an allocation scope.",
                        ),
                        registry.gauge_with(
                            "velv_mem_scope_peak_bytes",
                            &[("scope", scope)],
                            "High-water mark of live heap bytes attributed to an allocation scope.",
                        ),
                    )
                })
                .collect(),
            mem_measured_cache_bytes: registry.gauge(
                "velv_mem_measured_cache_bytes",
                "Deep measured footprint of the verdict cache (shard tables plus resident values).",
            ),
            mem_measured_queue_bytes: registry.gauge(
                "velv_mem_measured_queue_bytes",
                "Deep measured footprint of the job queue heap.",
            ),
            mem_measured_store_index_bytes: registry.gauge(
                "velv_mem_measured_store_index_bytes",
                "Deep measured footprint of the verdict store's in-memory key index.",
            ),
        }
    }
}

/// A point-in-time statistics snapshot of a service.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Jobs submitted (including batch entries and deduplicated/cached ones).
    pub submitted: u64,
    /// Jobs submitted through the batch endpoint.
    pub batch_entries: u64,
    /// Batch groups scheduled as one shared incremental session.
    pub batch_groups: u64,
    /// Jobs whose result was delivered by a worker.
    pub completed: u64,
    /// Submissions answered straight from the verdict cache.
    pub cache_hits: u64,
    /// Submissions that subscribed to an in-flight identical job.
    pub dedup_joins: u64,
    /// Translations started (cache hits and dedup joins start none).
    pub translations: u64,
    /// Back-end solve runs started.
    pub fresh_solves: u64,
    /// Verdicts: correct designs.
    pub correct: u64,
    /// Verdicts: buggy designs (counterexample produced).
    pub buggy: u64,
    /// Verdicts: undecided (timeout, cancellation, resource limits).
    pub unknown: u64,
    /// Jobs abandoned because every client disconnected or the service shut
    /// down.
    pub cancelled: u64,
    /// DRAT proof artifacts stored in the cache.
    pub proofs_kept: u64,
    /// Queued jobs shed under overload in favour of higher-priority work.
    pub shed: u64,
    /// Submissions rejected as busy (queue full, no lower-priority victim).
    pub busy_rejections: u64,
    /// Submissions rejected by the per-client in-flight quota.
    pub quota_rejections: u64,
    /// Worker panics contained by the pool.
    pub worker_panics: u64,
    /// Decided verdicts appended to the crash-safe store.
    pub persisted: u64,
    /// Verdicts replayed from the store into the cache at startup.
    pub replayed: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Jobs currently being worked on.
    pub running: u64,
    /// Total translation+solve time spent by workers.
    pub solve_time: Duration,
    /// Total submission-to-result latency over completed jobs.
    pub wall_time: Duration,
    /// Verdict-cache statistics.
    pub cache: CacheStats,
}

impl ServiceStats {
    /// Flat `(key, value)` view of the counters — the wire `stats` payload.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("submitted", self.submitted),
            ("batch-entries", self.batch_entries),
            ("batch-groups", self.batch_groups),
            ("completed", self.completed),
            ("cache-hits", self.cache_hits),
            ("dedup-joins", self.dedup_joins),
            ("translations", self.translations),
            ("fresh-solves", self.fresh_solves),
            ("correct", self.correct),
            ("buggy", self.buggy),
            ("unknown", self.unknown),
            ("cancelled", self.cancelled),
            ("proofs-kept", self.proofs_kept),
            ("shed", self.shed),
            ("busy-rejections", self.busy_rejections),
            ("quota-rejections", self.quota_rejections),
            ("worker-panics", self.worker_panics),
            ("persisted", self.persisted),
            ("replayed", self.replayed),
            ("queued", self.queued),
            ("running", self.running),
            ("solve-micros", self.solve_time.as_micros() as u64),
            ("wall-micros", self.wall_time.as_micros() as u64),
            ("cache-entries", self.cache.entries),
            ("cache-bytes", self.cache.bytes),
            ("cache-capacity-bytes", self.cache.capacity_bytes),
            ("cache-hits-total", self.cache.hits),
            ("cache-misses", self.cache.misses),
            ("cache-insertions", self.cache.insertions),
            ("cache-evictions", self.cache.evictions),
            ("cache-oversize", self.cache.oversize),
        ]
    }
}

struct QueueState {
    heap: BinaryHeap<QueuedItem>,
    seq: u64,
    /// Unresolved jobs sitting in the heap — the quantity bounded by
    /// [`ServiceConfig::max_queue_depth`].  Shed jobs stay in the heap
    /// (a [`BinaryHeap`] has no removal) but leave this count; workers
    /// skip them on pop.
    depth: u64,
}

impl velv_obs::MemFootprint for QueueState {
    /// Deep measured bytes of the queue: heap slots (occupied and reserved)
    /// plus the boxed job state each entry owns.  Job *contents* (problems,
    /// specs) are charged at struct size — the dominant queue cost is the
    /// per-entry state, not deep problem ASTs.
    fn measured_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<QueueState>()
            + self.heap.capacity() * std::mem::size_of::<QueuedItem>();
        for queued in self.heap.iter() {
            bytes += match &queued.item {
                WorkItem::Single(_) => std::mem::size_of::<SingleJob>(),
                WorkItem::Batch(jobs) => jobs.capacity() * std::mem::size_of::<SingleJob>(),
            };
        }
        bytes
    }
}

/// A live progress-table entry: one job a worker is currently running, with
/// the heartbeat-fed [`velv_sat::ProgressCell`] it reports into.
struct ProgressEntry {
    name: String,
    priority: i32,
    started: Instant,
    deadline: Option<Instant>,
    cell: Arc<velv_sat::ProgressCell>,
}

/// One row of the live per-job progress table — the payload of the `status`
/// wire verb's `job` lines and of `velvc top`/`velvc watch`.
#[derive(Clone, Debug)]
pub struct ProgressRow {
    /// The job's structural fingerprint.
    pub fingerprint: Fingerprint,
    /// The design name.
    pub name: String,
    /// Scheduling class (`high`/`normal`/`low`).
    pub class: &'static str,
    /// Time since submission.
    pub elapsed: Duration,
    /// Total wall budget (submission to deadline), when the job has one.
    pub budget: Option<Duration>,
    /// The latest solver heartbeat figures (all zero before the first
    /// heartbeat, and for back ends that do not heartbeat).
    pub progress: velv_sat::ProgressSnapshot,
}

struct Inner {
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    work: Condvar,
    in_flight: Mutex<HashMap<u128, Arc<JobState>>>,
    /// Jobs currently on a worker, keyed by fingerprint; feeds the `status`
    /// progress rows.
    progress: Mutex<HashMap<u128, ProgressEntry>>,
    /// Rate limiter of storm-triggered flight dumps (shed storms, store
    /// append failures) — at most one dump per window, so a sustained storm
    /// cannot turn into an I/O storm.
    flight_last_dump: Mutex<Option<Instant>>,
    cache: VerdictCache,
    /// The crash-safe verdict store, when configured: decided verdicts are
    /// appended before delivery, and startup replayed it into the cache.
    store: Option<velv_store::Store>,
    /// The startup recovery report of the store, when configured.
    recovery: Option<velv_store::RecoveryReport>,
    /// The per-service metric registry: every counter/gauge/histogram of
    /// this instance, including the cache's lookup counters.  Per-service
    /// (not global) so concurrent instances do not mix their numbers.
    registry: velv_obs::Registry,
    counters: Counters,
    /// Current memory-pressure level (see [`pressure_level`]); written by
    /// [`Inner::update_pressure`], read lock-free at admission.
    mem_pressure: AtomicU64,
    shutdown: AtomicBool,
}

impl Inner {
    fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            submitted: c.submitted.get(),
            batch_entries: c.batch_entries.get(),
            batch_groups: c.batch_groups.get(),
            completed: c.completed.get(),
            cache_hits: c.cache_hits.get(),
            dedup_joins: c.dedup_joins.get(),
            translations: c.translations.get(),
            fresh_solves: c.fresh_solves.get(),
            correct: c.correct.get(),
            buggy: c.buggy.get(),
            unknown: c.unknown.get(),
            cancelled: c.cancelled.get(),
            proofs_kept: c.proofs_kept.get(),
            shed: c.shed.get(),
            busy_rejections: c.busy_rejections.get(),
            quota_rejections: c.quota_rejections.get(),
            worker_panics: c.worker_panics.get(),
            persisted: c.persisted.get(),
            replayed: c.replayed.get(),
            queued: c.queued.get().max(0) as u64,
            running: c.running.get().max(0) as u64,
            solve_time: Duration::from_micros(c.solve_micros.get()),
            wall_time: Duration::from_micros(c.wall_micros.get()),
            cache: self.cache.stats(),
        }
    }

    /// Refreshes the snapshot-time gauges (cache residency, latency
    /// percentiles, SLO attainment) from their sources; call before
    /// snapshotting the registry.
    fn refresh_gauges(&self) {
        let cache = self.cache.stats();
        self.counters.cache_entries.set(cache.entries as i64);
        self.counters.cache_bytes.set(cache.bytes as i64);
        self.counters
            .cache_capacity_bytes
            .set(cache.capacity_bytes as i64);
        let wall = self.counters.job_wall_class.merged_snapshot();
        self.counters.job_wall_p50.set(wall.quantile(0.50) as i64);
        self.counters.job_wall_p95.set(wall.quantile(0.95) as i64);
        self.counters.job_wall_p99.set(wall.quantile(0.99) as i64);
        self.counters
            .slo_target_micros
            .set(self.config.slo_target.as_micros() as i64);
        let within = self.counters.slo_within.get();
        let missed = self.counters.slo_missed.get();
        let attainment = match within + missed {
            0 => 1000, // No completed jobs: the SLO is vacuously met.
            total => (within * 1000 / total) as i64,
        };
        self.counters.slo_attainment_permille.set(attainment);
        self.counters.slo_burn_permille.set(1000 - attainment);
        self.refresh_mem_gauges();
    }

    /// Publishes the allocator's snapshot (global and per-scope live/peak),
    /// the deep measured footprints of the hot structures, and re-evaluates
    /// the pressure ladder.  The measured gauges cross-check the allocator's
    /// scope attribution: `velv_mem_measured_cache_bytes` and
    /// `velv_mem_scope_live_bytes{scope="serve.cache"}` should track each
    /// other.
    fn refresh_mem_gauges(&self) {
        use velv_obs::MemFootprint;
        let mem = velv_obs::mem::snapshot();
        self.counters.mem_live_bytes.set(mem.live_bytes);
        self.counters.mem_peak_bytes.set(mem.peak_bytes);
        self.counters
            .mem_rss_peak_bytes
            .set(mem.peak_rss_bytes.min(i64::MAX as u64) as i64);
        self.counters
            .mem_limit_bytes
            .set(self.config.mem_limit.unwrap_or(0).min(i64::MAX as u64) as i64);
        for (scope, (live, peak)) in mem.scopes.iter().zip(&self.counters.mem_scopes) {
            live.set(scope.live_bytes);
            peak.set(scope.peak_bytes);
        }
        self.counters
            .mem_measured_cache_bytes
            .set(self.cache.measured_bytes() as i64);
        let queue_bytes = self.queue.lock().expect("queue lock").measured_bytes();
        self.counters
            .mem_measured_queue_bytes
            .set(queue_bytes as i64);
        if let Some(store) = &self.store {
            self.counters
                .mem_measured_store_index_bytes
                .set(store.measured_bytes() as i64);
        }
        self.update_pressure();
    }

    /// Accounts a completed job's wall time: totals, the unlabelled and the
    /// class-labelled latency histograms, and the SLO counters.
    fn note_job_wall(&self, priority: i32, wall: Duration) {
        let micros = wall.as_micros() as u64;
        self.counters.wall_micros.add(micros);
        self.counters.job_wall_micros.observe(micros);
        self.counters.job_wall_class.observe(priority, micros);
        if wall <= self.config.slo_target {
            self.counters.slo_within.inc();
        } else {
            self.counters.slo_missed.inc();
        }
    }

    /// Dumps the flight recorder for a storm-class trigger, at most once per
    /// 30-second window (worker panics dump unconditionally — those are
    /// singular events, not storms).
    fn flight_dump_rate_limited(&self, reason: &str) {
        {
            let mut last = self.flight_last_dump.lock().expect("flight dump lock");
            let now = Instant::now();
            if last.is_some_and(|t| now.duration_since(t) < Duration::from_secs(30)) {
                return;
            }
            *last = Some(now);
        }
        let _ = velv_obs::flight::dump(reason);
    }

    /// Re-evaluates the memory-pressure ladder against the allocator's live
    /// reading and applies stage transitions (shrink the cache, shed queued
    /// work, arm submission refusal); returns the current level.  Called at
    /// submission admission and at snapshot time.  Must not be invoked while
    /// holding the queue or in-flight lock — stage 2 takes both.
    fn update_pressure(&self) -> u64 {
        let Some(limit) = self.config.mem_limit else {
            return 0;
        };
        let live = velv_obs::mem::live_bytes().max(0) as u64;
        let level = pressure_level(live, limit);
        let prev = self.mem_pressure.swap(level, Ordering::Relaxed);
        if level == prev {
            return level;
        }
        self.counters.mem_pressure_level.set(level as i64);
        if velv_obs::enabled() {
            velv_obs::event(
                "serve.mem_pressure",
                &[("level", level.into()), ("live_bytes", live.into())],
            );
        }
        if prev == 0 && level > 0 {
            self.counters.mem_pressure_trips.inc();
            // First trip: preserve the moments leading into pressure.
            self.flight_dump_rate_limited("mem-pressure");
        }
        if level >= 1 && prev == 0 {
            // Stage 1: trade hit ratio for headroom.
            self.cache
                .set_capacity((self.config.cache_bytes / 4).max(1));
        } else if level == 0 {
            self.cache.set_capacity(self.config.cache_bytes.max(1));
        }
        if level >= 2 && prev < 2 {
            self.shed_queued_for_memory();
        }
        level
    }

    /// Stage-2 degradation: sheds the lower-priority half of the queued jobs
    /// (their waiters resolve as busy) so queued work stops holding memory
    /// the ceiling no longer affords.  Victim order matches overload
    /// shedding: lowest priority first, youngest first within a priority.
    fn shed_queued_for_memory(&self) {
        let mut queue = self.queue.lock().expect("queue lock");
        if queue.depth == 0 {
            return;
        }
        let target = queue.depth / 2;
        let mut victims: Vec<(i32, u64, Vec<Arc<JobState>>)> = queue
            .heap
            .iter()
            .filter(|q| q.item.unresolved_count() > 0)
            .map(|q| (q.priority, q.seq, q.item.states()))
            .collect();
        victims.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut freed = 0u64;
        'outer: for (_, _, states) in &victims {
            for state in states {
                if queue.depth - freed <= target {
                    break 'outer;
                }
                if !state.is_resolved() {
                    self.shed_state(state);
                    freed += 1;
                }
            }
        }
        queue.depth -= freed;
        self.counters.queued.sub(freed as i64);
    }

    /// The live progress rows, longest-running job first.
    fn progress_rows(&self) -> Vec<ProgressRow> {
        let table = self.progress.lock().expect("progress table lock");
        let mut rows: Vec<ProgressRow> = table
            .iter()
            .map(|(key, entry)| ProgressRow {
                fingerprint: Fingerprint(*key),
                name: entry.name.clone(),
                class: priority_class(entry.priority),
                elapsed: entry.started.elapsed(),
                budget: entry
                    .deadline
                    .map(|d| d.saturating_duration_since(entry.started)),
                progress: entry.cell.snapshot(),
            })
            .collect();
        drop(table);
        rows.sort_by_key(|row| std::cmp::Reverse(row.elapsed));
        rows
    }

    /// A point-in-time snapshot of the service registry, gauges refreshed.
    fn registry_snapshot(&self) -> velv_obs::Snapshot {
        self.refresh_gauges();
        self.registry.snapshot()
    }

    fn push(&self, item: WorkItem) {
        let jobs = item.job_count();
        let mut queue = self.queue.lock().expect("queue lock");
        let seq = queue.seq;
        queue.seq += 1;
        queue.depth += jobs;
        queue.heap.push(QueuedItem {
            priority: item.priority(),
            seq,
            item,
        });
        drop(queue);
        self.counters.queued.add(jobs as i64);
        self.work.notify_one();
    }

    /// Resolves a queued job as shed: the waiters get an `unknown` verdict
    /// with a busy reason, never a hang.  Called under the queue lock (lock
    /// order queue → in-flight → slot is taken nowhere in reverse).
    fn shed_state(&self, state: &Arc<JobState>) {
        self.counters.shed.inc();
        self.counters.unknown.inc();
        self.counters.completed.inc();
        let wall = state.submitted.elapsed();
        self.note_job_wall(state.priority, wall);
        self.remove_in_flight(state);
        state.resolve(JobResult {
            name: state.name.clone(),
            verdict: Verdict::Unknown("busy: shed under overload".to_owned()),
            from_cache: false,
            deduplicated: false,
            wall,
            solve_time: Duration::ZERO,
            certificate: None,
        });
    }

    /// Enqueues under the admission bound.  When the queue is full the
    /// lowest-priority queued entry is shed — but only if the incoming item
    /// strictly outranks it; otherwise the incoming item itself is rejected
    /// and handed back for the caller to fail as busy.
    fn push_bounded(&self, item: WorkItem) -> Result<(), WorkItem> {
        let Some(max) = self.config.max_queue_depth else {
            self.push(item);
            return Ok(());
        };
        let jobs = item.job_count();
        let mut shed_any = false;
        let mut queue = self.queue.lock().expect("queue lock");
        while queue.depth + jobs > max as u64 {
            // The minimum under the heap order is the lowest-priority,
            // youngest entry — the natural shed victim.
            let victim = queue
                .heap
                .iter()
                .filter(|q| q.item.unresolved_count() > 0)
                .min_by(|a, b| a.cmp(b))
                .map(|q| (q.priority, q.item.states()));
            match victim {
                Some((priority, states)) if priority < item.priority() => {
                    let mut freed = 0u64;
                    for state in &states {
                        if !state.is_resolved() {
                            self.shed_state(state);
                            freed += 1;
                        }
                    }
                    queue.depth -= freed;
                    self.counters.queued.sub(freed as i64);
                    shed_any = true;
                }
                _ => {
                    drop(queue);
                    if shed_any {
                        self.flight_dump_rate_limited("shed-storm");
                    }
                    return Err(item);
                }
            }
        }
        let seq = queue.seq;
        queue.seq += 1;
        queue.depth += jobs;
        queue.heap.push(QueuedItem {
            priority: item.priority(),
            seq,
            item,
        });
        drop(queue);
        if shed_any {
            self.flight_dump_rate_limited("shed-storm");
        }
        self.counters.queued.add(jobs as i64);
        self.work.notify_one();
        Ok(())
    }

    /// Fails a fresh admission as busy: the in-flight entry is retired and
    /// the ticket (if kept) resolves instead of hanging.
    fn reject_busy(&self, state: &Arc<JobState>, reason: &str) {
        self.counters.busy_rejections.inc();
        self.counters.unknown.inc();
        self.counters.completed.inc();
        self.remove_in_flight(state);
        state.resolve(JobResult {
            name: state.name.clone(),
            verdict: Verdict::Unknown(format!("busy: {reason}")),
            from_cache: false,
            deduplicated: false,
            wall: state.submitted.elapsed(),
            solve_time: Duration::ZERO,
            certificate: None,
        });
    }

    /// Blocks until work is available; `None` on shutdown.
    fn pop(&self) -> Option<WorkItem> {
        let mut queue = self.queue.lock().expect("queue lock");
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(queued) = queue.heap.pop() {
                let live = queued.item.unresolved_count();
                queue.depth -= live;
                self.counters.queued.sub(live as i64);
                if live == 0 {
                    // Every job of this entry was shed while it queued.
                    continue;
                }
                return Some(queued.item);
            }
            queue = self.work.wait(queue).expect("queue lock");
        }
    }

    fn remove_in_flight(&self, state: &Arc<JobState>) {
        let mut in_flight = self.in_flight.lock().expect("in-flight lock");
        if let Some(current) = in_flight.get(&state.fingerprint.0) {
            if Arc::ptr_eq(current, state) {
                in_flight.remove(&state.fingerprint.0);
            }
        }
    }

    /// Delivers a freshly computed verdict: cache it (decided verdicts only,
    /// *before* leaving the in-flight table so late submitters always find
    /// one of the two), retire the in-flight entry, resolve every subscriber
    /// and bump the counters.
    #[allow(clippy::too_many_arguments)]
    fn finish_fresh(
        &self,
        job: &SingleJob,
        verdict: Verdict,
        certificate: Option<Certificate>,
        proof: Option<Arc<Vec<u8>>>,
        solve_time: Duration,
        translation_stats: Option<TranslationStats>,
        profile: Option<Arc<String>>,
    ) {
        let decided = !matches!(verdict, Verdict::Unknown(_));
        if decided {
            if proof.is_some() {
                self.counters.proofs_kept.inc();
            }
            let entry = CachedVerdict {
                verdict: verdict.clone(),
                certificate: certificate.clone(),
                proof_drat: proof,
                solve_time,
                translation_stats,
                profile,
            };
            // Durability point: the verdict reaches the store (under the
            // configured fsync policy) before any subscriber sees it, so a
            // response on the wire implies a recoverable record.  An append
            // failure is counted and the verdict still delivered — losing
            // durability must not lose the result.
            if let Some(store) = &self.store {
                let _mem_scope = velv_obs::MemScope::enter("store.log");
                let (payload, sidecar) = persist::encode(&entry);
                match store.append(job.state.fingerprint.0, &payload, sidecar.as_deref()) {
                    Ok(_) => self.counters.persisted.inc(),
                    Err(_) => {
                        self.counters.persist_errors.inc();
                        // Durability just degraded: preserve the evidence.
                        self.flight_dump_rate_limited("store-append-failure");
                    }
                }
            }
            let _mem_scope = velv_obs::MemScope::enter("serve.cache");
            self.cache.insert(job.state.fingerprint, entry);
        }
        self.remove_in_flight(&job.state);
        let wall = job.state.submitted.elapsed();
        match &verdict {
            Verdict::Correct => self.counters.correct.inc(),
            Verdict::Buggy(_) => self.counters.buggy.inc(),
            Verdict::Unknown(_) => self.counters.unknown.inc(),
        };
        if !decided && job.state.cancel.is_cancelled() {
            self.counters.cancelled.inc();
        }
        self.counters.completed.inc();
        self.counters
            .solve_micros
            .add(solve_time.as_micros() as u64);
        self.note_job_wall(job.state.priority, wall);
        job.state.resolve(JobResult {
            name: job.state.name.clone(),
            verdict,
            from_cache: false,
            deduplicated: false,
            wall,
            solve_time,
            certificate,
        });
    }

    fn finish_cancelled(&self, job: &SingleJob) {
        self.finish_fresh(
            job,
            Verdict::Unknown("cancelled".to_owned()),
            None,
            None,
            Duration::ZERO,
            None,
            None,
        );
    }
}

fn verdict_of_result(translation: &Translation, result: SatResult) -> Verdict {
    match result {
        SatResult::Unsat => Verdict::Correct,
        SatResult::Sat(model) => Verdict::Buggy(Counterexample::from_model(
            &translation.ctx,
            &translation.primary_vars,
            &model,
        )),
        SatResult::Unknown(reason) => Verdict::Unknown(format!("{reason:?}")),
    }
}

fn cdcl_config_for(backend: BackendChoice) -> CdclConfig {
    match backend {
        BackendChoice::Sat(SolverKind::BerkMin) => CdclConfig::berkmin(),
        BackendChoice::Sat(SolverKind::Grasp) => CdclConfig::grasp(),
        BackendChoice::Sat(SolverKind::Sato) => CdclConfig::sato(),
        _ => CdclConfig::chaff(),
    }
}

fn is_cdcl(backend: BackendChoice) -> bool {
    matches!(
        backend,
        BackendChoice::Sat(
            SolverKind::Chaff | SolverKind::BerkMin | SolverKind::Grasp | SolverKind::Sato
        )
    )
}

/// A job can join a shared batch session iff one incremental CDCL engine can
/// decide it faithfully.
fn batchable(spec: &JobSpec) -> bool {
    spec.mode == SolveMode::Monolithic && is_cdcl(spec.backend) && !spec.keep_proof
}

fn worker_loop(inner: Arc<Inner>) {
    inner.counters.workers.add(1);
    while let Some(item) = inner.pop() {
        let jobs = item.job_count();
        let states = item.states();
        inner.counters.running.add(jobs as i64);
        inner.counters.workers_busy.add(1);
        // Panic containment: a panicking translation or solver run must not
        // take the worker thread (and eventually the pool) down.  The unwind
        // is caught, the affected jobs resolve as `unknown` (never cached,
        // never persisted), and the worker returns to the queue.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| match item {
            WorkItem::Single(job) => run_single(&inner, &job),
            WorkItem::Batch(entries) => run_batch(&inner, entries),
        }));
        if outcome.is_err() {
            inner.counters.worker_panics.inc();
            // Dump the flight ring *before* resolving the victims: once a
            // waiter observes the panic verdict, the post-mortem containing
            // the panicking job's spans is already on disk.
            let _ = velv_obs::flight::dump("worker-panic");
            for state in &states {
                inner.remove_in_flight(state);
                if !state.is_resolved() {
                    inner.counters.unknown.inc();
                    inner.counters.completed.inc();
                    state.resolve(JobResult {
                        name: state.name.clone(),
                        verdict: Verdict::Unknown(
                            "worker panicked while running this job".to_owned(),
                        ),
                        from_cache: false,
                        deduplicated: false,
                        wall: state.submitted.elapsed(),
                        solve_time: Duration::ZERO,
                        certificate: None,
                    });
                }
            }
        }
        inner.counters.workers_busy.sub(1);
        inner.counters.running.sub(jobs as i64);
    }
    inner.counters.workers.sub(1);
}

/// Registers jobs in the live progress table for the duration of a worker
/// run; removal on drop keeps the table clean across panics (the guard drops
/// during the unwind caught by [`worker_loop`]).
struct ProgressTableGuard<'a> {
    inner: &'a Inner,
    keys: Vec<u128>,
}

impl<'a> ProgressTableGuard<'a> {
    fn insert(
        inner: &'a Inner,
        jobs: &[&SingleJob],
        cell: &Arc<velv_sat::ProgressCell>,
    ) -> ProgressTableGuard<'a> {
        let mut table = inner.progress.lock().expect("progress table lock");
        let mut keys = Vec::with_capacity(jobs.len());
        for job in jobs {
            table.insert(
                job.state.fingerprint.0,
                ProgressEntry {
                    name: job.state.name.clone(),
                    priority: job.spec.priority,
                    started: job.state.submitted,
                    deadline: job.deadline,
                    cell: Arc::clone(cell),
                },
            );
            keys.push(job.state.fingerprint.0);
        }
        ProgressTableGuard { inner, keys }
    }
}

impl Drop for ProgressTableGuard<'_> {
    fn drop(&mut self) {
        let mut table = self.inner.progress.lock().expect("progress table lock");
        for key in &self.keys {
            table.remove(key);
        }
    }
}

/// The `serve.worker.run` failpoint, hit once per work item *after* the
/// `serve.job` span has opened, so an injected panic leaves the job's spans
/// in the flight ring for the post-mortem dump.
fn hit_worker_run_failpoint() {
    if let Some(velv_store::FailAction::Panic) =
        velv_store::failpoint::global().hit("serve.worker.run")
    {
        panic!("failpoint serve.worker.run: injected worker panic");
    }
}

/// The `serve.job` span fields: the job (or batch) identity plus, when the
/// submitter sent a [`TraceContext`], the `trace`/`remote_parent` tags that
/// let [`velv_obs::check_traces`] parent this span under the client's root
/// span in a merged multi-process trace.
fn job_span_fields<'a>(
    identity: (&'a str, velv_obs::FieldValue),
    trace: Option<&TraceContext>,
) -> Vec<(&'a str, velv_obs::FieldValue)> {
    let mut fields = vec![identity];
    if let Some(context) = trace {
        fields.push(("trace", context.trace_id.into()));
        fields.push(("remote_parent", context.parent_span.into()));
    }
    fields
}

fn job_budget(job: &SingleJob) -> Budget {
    Budget {
        max_conflicts: job.spec.max_conflicts,
        max_decisions: None,
        max_time: None,
        deadline: job.deadline,
        cancel: Some(job.state.cancel.clone()),
    }
}

fn run_single(inner: &Inner, job: &SingleJob) {
    if job.state.is_resolved() {
        // Shed by admission control while it queued; the waiters already
        // have their busy verdict.
        return;
    }
    let _job_span = velv_obs::span_fields(
        "serve.job",
        &job_span_fields(("job", job.state.name.as_str().into()), job.trace.as_ref()),
    );
    let job_started = Instant::now();
    let queued = job.state.submitted.elapsed();
    inner
        .counters
        .queue_wait
        .observe(job.spec.priority, queued.as_micros() as u64);
    if velv_obs::enabled() {
        velv_obs::event(
            "serve.dequeue",
            &[("queued_us", (queued.as_micros() as u64).into())],
        );
    }
    hit_worker_run_failpoint();
    job.state.set_status(JobStatus::Running);
    if job.state.cancel.is_cancelled() {
        inner.finish_cancelled(job);
        return;
    }
    // A prior identical job may have finished while this one sat in the
    // queue behind it is impossible (in-flight dedup), but a *shutdown* race
    // is not; re-checking the cache is cheap and harmless.
    if let Some(hit) = inner.cache.get(job.state.fingerprint) {
        inner.remove_in_flight(&job.state);
        let wall = job.state.submitted.elapsed();
        inner.counters.cache_hits.inc();
        inner.counters.completed.inc();
        job.state.resolve(JobResult {
            name: job.state.name.clone(),
            verdict: hit.verdict.clone(),
            from_cache: true,
            deduplicated: false,
            wall,
            solve_time: Duration::ZERO,
            certificate: hit.certificate.clone(),
        });
        return;
    }

    let started = Instant::now();
    let verifier = Verifier::new(job.spec.options.clone());
    let budget = job_budget(job);
    inner.counters.translations.inc();

    // Live introspection: the solver's heartbeats flow into this cell, which
    // the `status` progress rows read concurrently.
    let progress = Arc::new(velv_sat::ProgressCell::new());
    let _table = ProgressTableGuard::insert(inner, &[job], &progress);
    let _cell = velv_sat::install_progress_cell(Arc::clone(&progress));

    // Solve profiling: the recorder rides the same heartbeats; the profile
    // sink folds this job's spans into a phase tree once the solve is done.
    let recorder = inner
        .config
        .profile_sink
        .as_ref()
        .map(|_| velv_obs::shared_recorder());
    let _recorder_guard = recorder.clone().map(velv_sat::install_solve_recorder);

    let (verdict, certificate, proof, stats) = match job.spec.mode {
        SolveMode::Decomposed { max_obligations } => {
            let problem = &job.problem;
            let shared = {
                let _span = velv_obs::span("serve.translate");
                let _mem_scope = velv_obs::MemScope::enter("eufm");
                verifier.translate_obligations_shared(problem, max_obligations)
            };
            inner.counters.fresh_solves.inc();
            let _solve_span = velv_obs::span("serve.solve");
            if job.spec.certified {
                match verifier.check_shared_certified(
                    &shared,
                    cdcl_config_for(job.spec.backend),
                    &job.spec.certify_options(),
                    budget,
                ) {
                    Ok(outcome) => (outcome.overall, None, None, Some(shared.stats)),
                    Err(e) => (
                        Verdict::Unknown(format!("certification failed: {e}")),
                        None,
                        None,
                        Some(shared.stats),
                    ),
                }
            } else {
                let mut solver =
                    IncrementalSolver::with_formula(cdcl_config_for(job.spec.backend), &shared.cnf);
                let (overall, _, _) = verifier.check_shared_with(&shared, &mut solver, budget);
                (overall, None, None, Some(shared.stats))
            }
        }
        SolveMode::Monolithic => {
            let translation = {
                let _span = velv_obs::span("serve.translate");
                let _mem_scope = velv_obs::MemScope::enter("eufm");
                verifier.translate_problem(&job.problem)
            };
            let stats = translation.stats;
            inner.counters.fresh_solves.inc();
            let _solve_span = velv_obs::span("serve.solve");
            if job.spec.certified {
                match verifier.check_certified(
                    &translation,
                    cdcl_config_for(job.spec.backend),
                    &job.spec.certify_options(),
                    budget,
                ) {
                    Ok((certified, _)) => (
                        certified.verdict,
                        Some(certified.certificate),
                        None,
                        Some(stats),
                    ),
                    Err(e) => (
                        Verdict::Unknown(format!("certification failed: {e}")),
                        None,
                        None,
                        Some(stats),
                    ),
                }
            } else if let Some(factory) = &inner.config.engine_override {
                let mut solver = factory();
                let verdict = verifier.check(&translation, solver.as_mut(), budget);
                (verdict, None, None, Some(stats))
            } else {
                match job.spec.backend {
                    BackendChoice::Sat(kind) => {
                        let mut solver = kind.build();
                        if job.spec.keep_proof && !translation.lazy_transitivity {
                            let shared_proof = velv_sat::SharedProof::new();
                            match solver.solve_with_proof(
                                &translation.cnf,
                                &[],
                                budget.clone(),
                                &shared_proof,
                            ) {
                                Some(result) => {
                                    let proof = if result.is_unsat() {
                                        let _mem_scope = velv_obs::MemScope::enter("proof");
                                        let text = velv_sat::dimacs::to_drat_text_string(
                                            &shared_proof.take(),
                                        );
                                        Some(Arc::new(text.into_bytes()))
                                    } else {
                                        None
                                    };
                                    (
                                        verdict_of_result(&translation, result),
                                        None,
                                        proof,
                                        Some(stats),
                                    )
                                }
                                // The engine cannot log proofs: plain solve.
                                None => (
                                    verifier.check(&translation, solver.as_mut(), budget),
                                    None,
                                    None,
                                    Some(stats),
                                ),
                            }
                        } else {
                            (
                                verifier.check(&translation, solver.as_mut(), budget),
                                None,
                                None,
                                Some(stats),
                            )
                        }
                    }
                    BackendChoice::Portfolio => (
                        verifier.check_with_backend(
                            &translation,
                            &Backend::default_portfolio(),
                            budget,
                        ),
                        None,
                        None,
                        Some(stats),
                    ),
                    BackendChoice::Bdd => (
                        verifier.check_with_backend(
                            &translation,
                            &Backend::Bdd {
                                node_limit: Backend::DEFAULT_BDD_NODE_LIMIT,
                            },
                            budget,
                        ),
                        None,
                        None,
                        Some(stats),
                    ),
                }
            }
        }
    };
    let profile = build_job_profile(inner, job, &verdict, _job_span.id(), job_started, recorder);
    let _respond_span = velv_obs::span("serve.respond");
    inner.finish_fresh(
        job,
        verdict,
        certificate,
        proof,
        started.elapsed(),
        stats,
        profile,
    );
}

/// Assembles the [`velv_obs::SolveProfile`] of a fresh single-job solve:
/// the recorder's time-series plus the phase tree folded out of the job's
/// spans.  Runs after the translate/solve spans have closed but while the
/// `serve.job` span is still open, so the job wall is passed in explicitly;
/// the respond phase (microseconds of bookkeeping) is deliberately outside
/// the profiled window.
fn build_job_profile(
    inner: &Inner,
    job: &SingleJob,
    verdict: &Verdict,
    job_span_id: u64,
    job_started: Instant,
    recorder: Option<velv_obs::SharedSolveRecorder>,
) -> Option<Arc<String>> {
    let sink = inner.config.profile_sink.as_ref()?;
    let recorder = recorder?;
    // The translate thread already drained its trace buffer on exit; flush
    // the remaining per-thread buffers so the sink holds every span of this
    // job before the tree is folded.
    velv_obs::flush();
    let wall_us = job_started.elapsed().as_micros() as u64;
    let phases = sink
        .take_tree(job_span_id, Some(wall_us))
        .map(|tree| vec![tree])
        .unwrap_or_default();
    let rec = recorder.lock().ok()?;
    let series = rec.series();
    let final_sample = series.last();
    let profile = velv_obs::SolveProfile {
        instance: job.state.name.clone(),
        solver: final_sample
            .map(|s| s.label.clone())
            .unwrap_or_else(|| format!("{:?}", job.spec.backend)),
        result: match verdict {
            Verdict::Correct => "correct".to_owned(),
            Verdict::Buggy(_) => "buggy".to_owned(),
            Verdict::Unknown(reason) => format!("unknown: {reason}"),
        },
        wall_us,
        stride: rec.stride(),
        offered: rec.offered(),
        conflicts: final_sample.map(|s| s.conflicts).unwrap_or(0),
        propagations: final_sample.map(|s| s.propagations).unwrap_or(0),
        decisions: final_sample.map(|s| s.decisions).unwrap_or(0),
        restarts: final_sample.map(|s| s.restarts).unwrap_or(0),
        markers: rec.markers().to_vec(),
        samples: series,
        phases,
    };
    Some(Arc::new(profile.to_jsonl()))
}

fn run_batch(inner: &Inner, entries: Vec<SingleJob>) {
    let mut alive = Vec::new();
    for job in entries {
        if job.state.is_resolved() {
            // Shed while queued; nothing left to deliver.
        } else if job.state.cancel.is_cancelled() {
            job.state.set_status(JobStatus::Running);
            inner.finish_cancelled(&job);
        } else {
            job.state.set_status(JobStatus::Running);
            inner.counters.queue_wait.observe(
                job.spec.priority,
                job.state.submitted.elapsed().as_micros() as u64,
            );
            alive.push(job);
        }
    }
    if alive.is_empty() {
        return;
    }
    // The group shares options/backend/certified by construction
    // (`ServeHandle::submit_batch` groups on exactly those fields); any
    // entry's trace context stands in for the group's.
    let trace = alive.iter().find_map(|j| j.trace);
    let _job_span = velv_obs::span_fields(
        "serve.job",
        &job_span_fields(("batch", (alive.len() as u64).into()), trace.as_ref()),
    );
    hit_worker_run_failpoint();
    let spec = alive[0].spec.clone();
    let verifier = Verifier::new(spec.options.clone());
    let started = Instant::now();
    inner.counters.translations.inc();

    // One shared progress cell for the whole group: the session solves the
    // entries sequentially on this thread, so the rows of a batch show the
    // session's combined progress.
    let progress = Arc::new(velv_sat::ProgressCell::new());
    let job_refs: Vec<&SingleJob> = alive.iter().collect();
    let _table = ProgressTableGuard::insert(inner, &job_refs, &progress);
    let _cell = velv_sat::install_progress_cell(Arc::clone(&progress));
    let problems: Vec<&VerificationProblem> = alive.iter().map(|j| &j.problem).collect();
    let shared = {
        let _span = velv_obs::span("serve.translate");
        verifier.translate_batch_shared(&problems)
    };
    inner.counters.fresh_solves.inc();

    let solve_span = velv_obs::span("serve.solve");
    let verdicts: Vec<(Verdict, Option<Certificate>)> = if spec.certified {
        // Certification replays the whole session's proof once, so the batch
        // runs under one shared budget: the latest entry deadline (absent
        // deadlines win), without per-entry cancellation.
        let deadline = if alive.iter().any(|j| j.deadline.is_none()) {
            None
        } else {
            alive.iter().filter_map(|j| j.deadline).max()
        };
        let budget = Budget {
            deadline,
            ..Budget::default()
        };
        match verifier.check_shared_certified(
            &shared,
            cdcl_config_for(spec.backend),
            &spec.certify_options(),
            budget,
        ) {
            Ok(outcome) => outcome
                .obligations
                .into_iter()
                .map(|o| (o.certified.verdict, Some(o.certified.certificate)))
                .collect(),
            Err(e) => {
                let reason = format!("certification failed: {e}");
                alive
                    .iter()
                    .map(|_| (Verdict::Unknown(reason.clone()), None))
                    .collect()
            }
        }
    } else {
        let mut solver =
            IncrementalSolver::with_formula(cdcl_config_for(spec.backend), &shared.cnf);
        let budgets: Vec<Budget> = alive.iter().map(job_budget).collect();
        let (results, _) = verifier.check_shared_each(&shared, &mut solver, &budgets);
        results
            .into_iter()
            .map(|(_, verdict)| (verdict, None))
            .collect()
    };

    drop(solve_span);

    // Attribute the batch cost evenly: the point of the shared session is
    // precisely that per-entry cost is not separable.
    let _respond_span = velv_obs::span("serve.respond");
    let share = started.elapsed() / alive.len() as u32;
    for (job, (verdict, certificate)) in alive.iter().zip(verdicts) {
        inner.finish_fresh(
            job,
            verdict,
            certificate,
            None,
            share,
            Some(shared.stats),
            // Batch jobs share one incremental session; per-job attribution
            // of its time-series would be fiction, so batches are not
            // profiled.
            None,
        );
    }
}

/// How a submission was admitted.
enum Admission {
    Ticket(JobTicket),
    Fresh(JobTicket, Box<SingleJob>),
}

/// The in-process client API of a verification service.
///
/// A `ServeHandle` is cheap to clone; every clone talks to the same worker
/// pool, cache and queue.  When the last handle is dropped the service shuts
/// down: in-flight jobs are cancelled, workers are joined, and queued jobs
/// resolve as cancelled.  `velvd` wraps a handle in the TCP front end; tests
/// and examples use it directly, with no sockets involved.
///
/// ```no_run
/// use velv_serve::{JobSpec, ModelRef, ServeHandle, ServiceConfig};
///
/// let service = ServeHandle::start(ServiceConfig::default());
/// let ticket = service
///     .submit(JobSpec::new(ModelRef::dlx1_correct()))
///     .expect("submission accepted");
/// let result = ticket.wait();
/// assert!(result.verdict.is_correct());
/// ```
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<Inner>,
    workers: Arc<WorkerSet>,
}

struct WorkerSet {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerSet {
    fn shutdown(&self) {
        let first = !self.inner.shutdown.swap(true, Ordering::SeqCst);
        if first && velv_obs::enabled() {
            velv_obs::event("serve.shutdown", &[]);
        }
        // Stop whatever is being worked on right now.
        {
            let in_flight = self.inner.in_flight.lock().expect("in-flight lock");
            for state in in_flight.values() {
                state.cancel.cancel();
            }
        }
        self.inner.work.notify_all();
        let handles: Vec<JoinHandle<()>> = self
            .handles
            .lock()
            .expect("worker handles lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        // Resolve whatever never reached a worker.
        loop {
            let item = {
                let mut queue = self.inner.queue.lock().expect("queue lock");
                match queue.heap.pop() {
                    Some(queued) => {
                        self.inner
                            .counters
                            .queued
                            .sub(queued.item.job_count() as i64);
                        queued.item
                    }
                    None => break,
                }
            };
            match item {
                WorkItem::Single(job) => self.inner.finish_cancelled(&job),
                WorkItem::Batch(jobs) => {
                    for job in &jobs {
                        self.inner.finish_cancelled(job);
                    }
                }
            }
        }
        // The workers are joined and the queue is drained: push whatever
        // trace records are still sitting in per-thread buffers to the sink
        // so a graceful shutdown never loses the tail of the trace, and
        // leave one final flight dump (on the first shutdown only — the
        // teardown paths all funnel through here) as the parting
        // post-mortem.
        velv_obs::flush();
        if first {
            let _ = velv_obs::flight::dump("shutdown");
        }
    }
}

impl Drop for WorkerSet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ServeHandle {
    /// Starts a service instance with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configured verdict store cannot be opened; use
    /// [`ServeHandle::try_start`] to handle that case.
    pub fn start(config: ServiceConfig) -> ServeHandle {
        Self::try_start(config).expect("service start failed")
    }

    /// Starts a service instance, opening and replaying the verdict store
    /// when one is configured: every decided verdict recovered from the log
    /// warms the cache, so a restarted service answers repeated submissions
    /// without re-solving.
    ///
    /// # Errors
    ///
    /// Fails with [`ServeError::Store`] when the store directory cannot be
    /// opened or scanned.
    pub fn try_start(config: ServiceConfig) -> Result<ServeHandle, ServeError> {
        // The flight recorder is always on while a service runs: spans and
        // events land in the in-memory ring even with no trace sink
        // installed, so a panic or storm can dump the last moments.
        velv_obs::flight::arm();
        let workers = config.workers.max(1);
        let registry = velv_obs::Registry::new();
        let cache = VerdictCache::with_registry(config.cache_bytes, config.cache_shards, &registry);
        let counters = Counters::new(&registry);
        let mut store = None;
        let mut recovery = None;
        if let Some(dir) = &config.store_dir {
            let _mem_scope = velv_obs::MemScope::enter("store.log");
            let mut store_config = velv_store::StoreConfig::new(dir);
            store_config.fsync = config.store_fsync;
            store_config.failpoints = config.store_failpoints.clone();
            store_config.registry = Some(registry.clone());
            let (opened, report) = velv_store::Store::open(store_config)
                .map_err(|e| ServeError::Store(e.to_string()))?;
            // Warm boot: replay the live records (in append order, so a
            // later record for the same fingerprint wins) into the cache.
            let records = opened
                .live_records()
                .map_err(|e| ServeError::Store(e.to_string()))?;
            for record in records {
                match persist::decode(&record.payload, record.sidecar) {
                    Ok(entry) if !matches!(entry.verdict, Verdict::Unknown(_)) => {
                        let _mem_scope = velv_obs::MemScope::enter("serve.cache");
                        cache.insert(Fingerprint(record.key), entry);
                        counters.replayed.inc();
                    }
                    _ => counters.replay_skipped.inc(),
                }
            }
            store = Some(opened);
            recovery = Some(report);
        }
        let inner = Arc::new(Inner {
            cache,
            config,
            queue: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                seq: 0,
                depth: 0,
            }),
            work: Condvar::new(),
            in_flight: Mutex::new(HashMap::new()),
            progress: Mutex::new(HashMap::new()),
            flight_last_dump: Mutex::new(None),
            store,
            recovery,
            counters,
            registry,
            mem_pressure: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("velv-serve-worker-{index}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawning a service worker succeeds"),
            );
        }
        Ok(ServeHandle {
            workers: Arc::new(WorkerSet {
                inner: Arc::clone(&inner),
                handles: Mutex::new(handles),
            }),
            inner,
        })
    }

    /// Builds the problem, fingerprints it, and admits the job through the
    /// cache → in-flight → queue cascade.  The cache and in-flight checks
    /// happen under the in-flight lock, pairing with the worker's
    /// cache-insert-then-retire ordering, so a finishing twin is found in one
    /// of the two no matter how the submission races it.
    fn admit(&self, spec: JobSpec, trace: Option<TraceContext>) -> Result<Admission, ServeError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShutDown);
        }
        self.inner.counters.submitted.inc();
        // Evaluated before the in-flight lock (stage 2 takes the queue and
        // in-flight locks); the level is consulted again lock-free below.
        let pressure = self.inner.update_pressure();
        let (implementation, specification) = spec.model.build().map_err(ServeError::InvalidJob)?;
        let verifier = Verifier::new(spec.options.clone());
        let problem = verifier.build_problem(implementation.as_ref(), specification.as_ref());
        let fingerprint =
            velv_core::problem_fingerprint(&problem, &spec.options).combine(&spec.salt());

        let in_flight = self.inner.in_flight.lock().expect("in-flight lock");
        if let Some(hit) = self.inner.cache.get(fingerprint) {
            drop(in_flight);
            self.inner.counters.cache_hits.inc();
            let state = Arc::new(JobState::new(
                fingerprint,
                problem.name.clone(),
                spec.priority,
            ));
            state.resolve(JobResult {
                name: problem.name,
                verdict: hit.verdict.clone(),
                from_cache: true,
                deduplicated: false,
                wall: Duration::ZERO,
                solve_time: Duration::ZERO,
                certificate: hit.certificate.clone(),
            });
            return Ok(Admission::Ticket(JobTicket::subscribe(&state, false)));
        }
        if let Some(existing) = in_flight.get(&fingerprint.0) {
            // Join the twin only while at least one of its clients is still
            // interested: a job whose every ticket was dropped has its token
            // raised and will resolve as cancelled — a fresh submission must
            // get a fresh job (replacing the table entry; the abandoned
            // job's retire path no-ops on a replaced entry).
            if !existing.cancel.is_cancelled() {
                let ticket = JobTicket::subscribe(existing, true);
                drop(in_flight);
                self.inner.counters.dedup_joins.inc();
                return Ok(Admission::Ticket(ticket));
            }
        }
        // Stage-3 degradation: refuse *fresh* work while the heap sits at
        // the ceiling.  Cache hits and dedup joins above are still served —
        // they add no solver state and answering them sheds client retries.
        if pressure >= 3 {
            drop(in_flight);
            self.inner.counters.mem_pressure_rejections.inc();
            self.inner.counters.busy_rejections.inc();
            return Err(ServeError::Busy("memory pressure".to_owned()));
        }
        let state = Arc::new(JobState::new(
            fingerprint,
            problem.name.clone(),
            spec.priority,
        ));
        let ticket = JobTicket::subscribe(&state, false);
        let mut in_flight = in_flight;
        in_flight.insert(fingerprint.0, Arc::clone(&state));
        drop(in_flight);
        // `checked_add` so an absurd client-supplied timeout degrades to
        // "no deadline" instead of panicking mid-admission.
        let deadline = spec
            .timeout
            .or(self.inner.config.default_timeout)
            .and_then(|t| state.submitted.checked_add(t));
        Ok(Admission::Fresh(
            ticket,
            Box::new(SingleJob {
                spec,
                problem,
                deadline,
                state,
                trace,
            }),
        ))
    }

    /// Submits one job; see the module docs for the full path.
    ///
    /// # Errors
    ///
    /// Fails when the service is shut down or the spec is invalid; never
    /// blocks on the solvers (that is what the returned ticket is for).
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, ServeError> {
        self.submit_traced(spec, None)
    }

    /// [`ServeHandle::submit`] with the submitting client's [`TraceContext`]
    /// attached: the worker's `serve.job` span is tagged so a merged
    /// multi-process trace parents it under the client's root span.  The
    /// context is scheduling metadata only — it never enters the job's
    /// fingerprint, and a deduplicated submission keeps the first
    /// submitter's context.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::submit`].
    pub fn submit_traced(
        &self,
        spec: JobSpec,
        trace: Option<TraceContext>,
    ) -> Result<JobTicket, ServeError> {
        match self.admit(spec, trace)? {
            Admission::Ticket(ticket) => Ok(ticket),
            Admission::Fresh(ticket, job) => match self.inner.push_bounded(WorkItem::Single(job)) {
                Ok(()) => Ok(ticket),
                Err(item) => {
                    for state in item.states() {
                        self.inner.reject_busy(&state, "queue full");
                    }
                    Err(ServeError::Busy("queue full".to_owned()))
                }
            },
        }
    }

    /// Submits a batch: tickets are returned in input order.
    ///
    /// Entries that hit the cache or deduplicate resolve like single
    /// submissions.  The remaining *compatible* entries (monolithic mode,
    /// CDCL back end, grouped by identical options/backend/certification) are
    /// scheduled as shared batch sessions — one translation pass with
    /// cross-entry structure sharing, one persistent incremental solver per
    /// group; incompatible entries fall back to individual scheduling.
    ///
    /// # Errors
    ///
    /// Fails atomically (no work scheduled) when the service is shut down or
    /// any spec is invalid.
    pub fn submit_batch(&self, specs: Vec<JobSpec>) -> Result<Vec<JobTicket>, ServeError> {
        self.submit_batch_traced(specs, None)
    }

    /// [`ServeHandle::submit_batch`] with the submitting client's
    /// [`TraceContext`] attached to every fresh entry (see
    /// [`ServeHandle::submit_traced`]).
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::submit_batch`].
    pub fn submit_batch_traced(
        &self,
        specs: Vec<JobSpec>,
        trace: Option<TraceContext>,
    ) -> Result<Vec<JobTicket>, ServeError> {
        let count = specs.len() as u64;
        let mut tickets = Vec::with_capacity(specs.len());
        let mut fresh: Vec<Box<SingleJob>> = Vec::new();
        let mut admissions = Vec::with_capacity(specs.len());
        for spec in specs {
            match self.admit(spec, trace) {
                Ok(admission) => admissions.push(admission),
                Err(e) => {
                    // Atomic failure: retire every fresh job admitted so
                    // far, or its in-flight entry would outlive this call
                    // and every later submission of that fingerprint would
                    // subscribe to a job no worker will ever run.
                    for admission in admissions {
                        if let Admission::Fresh(_ticket, job) = admission {
                            self.inner.remove_in_flight(&job.state);
                            job.state.resolve(JobResult {
                                name: job.state.name.clone(),
                                verdict: Verdict::Unknown("batch rejected".to_owned()),
                                from_cache: false,
                                deduplicated: false,
                                wall: job.state.submitted.elapsed(),
                                solve_time: Duration::ZERO,
                                certificate: None,
                            });
                        }
                    }
                    return Err(e);
                }
            }
        }
        self.inner.counters.batch_entries.add(count);
        for admission in admissions {
            match admission {
                Admission::Ticket(ticket) => tickets.push(ticket),
                Admission::Fresh(ticket, job) => {
                    tickets.push(ticket);
                    fresh.push(job);
                }
            }
        }
        // Group compatible fresh jobs into shared sessions.
        let mut groups: HashMap<String, Vec<SingleJob>> = HashMap::new();
        for job in fresh {
            if batchable(&job.spec) {
                let key = format!(
                    "{};{};{}",
                    job.spec.options.canonical_token(),
                    job.spec.backend.to_wire(),
                    job.spec.certified
                );
                groups.entry(key).or_default().push(*job);
            } else {
                self.push_or_busy(WorkItem::Single(job));
            }
        }
        for (_, mut group) in groups {
            if group.len() == 1 {
                self.push_or_busy(WorkItem::Single(Box::new(group.pop().expect("one job"))));
            } else {
                self.inner.counters.batch_groups.inc();
                self.push_or_busy(WorkItem::Batch(group));
            }
        }
        Ok(tickets)
    }

    /// Enqueues under the admission bound; an overloaded rejection resolves
    /// every affected ticket as busy instead of failing the whole batch call
    /// (tickets for the rejected entries were already handed out).
    fn push_or_busy(&self, item: WorkItem) {
        if let Err(item) = self.inner.push_bounded(item) {
            for state in item.states() {
                self.inner.reject_busy(&state, "queue full");
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// The live per-job progress rows (jobs currently on a worker), fed by
    /// the solvers' heartbeats; longest-running first.
    pub fn progress_rows(&self) -> Vec<ProgressRow> {
        self.inner.progress_rows()
    }

    /// The configured worker-thread count.
    pub fn workers(&self) -> usize {
        self.inner.config.workers.max(1)
    }

    /// The service's metric registry (counters, gauges, histograms of this
    /// instance, including the verdict cache's lookup counters).
    pub fn registry(&self) -> &velv_obs::Registry {
        &self.inner.registry
    }

    /// A point-in-time snapshot of the service registry with the cache
    /// gauges refreshed — the source of the wire `stats` payload in every
    /// encoding.
    pub fn registry_snapshot(&self) -> velv_obs::Snapshot {
        self.inner.registry_snapshot()
    }

    /// The cached entry for a fingerprint, if resident (used by the `proof`
    /// wire command to hand out stored DRAT artifacts).
    pub fn cached(&self, fingerprint: Fingerprint) -> Option<Arc<CachedVerdict>> {
        self.inner.cache.get(fingerprint)
    }

    /// The startup recovery report of the verdict store, when one is
    /// configured: records scanned, live verdicts, torn-tail bytes truncated.
    pub fn store_recovery(&self) -> Option<&velv_store::RecoveryReport> {
        self.inner.recovery.as_ref()
    }

    /// The configured per-client in-flight quota (0 = unlimited); enforced
    /// by the TCP front end.
    pub fn per_client_quota(&self) -> usize {
        self.inner.config.per_client_quota
    }

    /// Re-evaluates and returns the current memory-pressure level (see
    /// [`pressure_level`]); 0 when no [`ServiceConfig::mem_limit`] is set.
    pub fn mem_pressure_level(&self) -> u64 {
        self.inner.update_pressure()
    }

    /// The configured live-heap ceiling, if any.
    pub fn mem_limit(&self) -> Option<u64> {
        self.inner.config.mem_limit
    }

    /// Deep measured footprints of the service's hot structures, `(name,
    /// bytes)` — the cross-check against the allocator's per-scope
    /// attribution, served by the `mem` wire verb.
    pub fn measured_footprints(&self) -> Vec<(&'static str, u64)> {
        use velv_obs::MemFootprint;
        let mut rows = vec![
            ("serve.cache", self.inner.cache.measured_bytes() as u64),
            (
                "serve.queue",
                self.inner
                    .queue
                    .lock()
                    .expect("queue lock")
                    .measured_bytes() as u64,
            ),
        ];
        if let Some(store) = &self.inner.store {
            rows.push(("store.index", store.measured_bytes() as u64));
        }
        rows
    }

    /// Counts a submission rejected by the per-client quota (called by the
    /// front end, which is where client identity exists).
    pub fn note_quota_rejection(&self) {
        self.inner.counters.quota_rejections.inc();
    }

    /// Whether [`ServeHandle::shutdown`] has been called (or the last handle
    /// dropped).
    pub fn is_shut_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Shuts the service down: cancels in-flight jobs, joins every worker,
    /// and resolves still-queued jobs as cancelled.  Idempotent; dropping the
    /// last handle does the same.
    pub fn shutdown(&self) {
        self.workers.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::pressure_level;

    #[test]
    fn pressure_ladder_thresholds() {
        let limit = 1_000_000;
        assert_eq!(pressure_level(0, limit), 0);
        assert_eq!(pressure_level(599_999, limit), 0);
        assert_eq!(pressure_level(600_000, limit), 1);
        assert_eq!(pressure_level(799_999, limit), 1);
        assert_eq!(pressure_level(800_000, limit), 2);
        assert_eq!(pressure_level(949_999, limit), 2);
        assert_eq!(pressure_level(950_000, limit), 3);
        assert_eq!(pressure_level(limit, limit), 3);
        assert_eq!(pressure_level(limit * 10, limit), 3);
    }

    #[test]
    fn pressure_without_a_limit_is_never_raised() {
        assert_eq!(pressure_level(u64::MAX, 0), 0);
    }

    #[test]
    fn pressure_thresholds_do_not_overflow_small_or_huge_limits() {
        assert_eq!(pressure_level(1, 1), 3);
        assert_eq!(pressure_level(0, 1), 0);
        assert_eq!(pressure_level(u64::MAX, u64::MAX), 3);
        assert_eq!(pressure_level(u64::MAX / 2, u64::MAX), 0);
    }
}
