//! `velvc` — command-line client for `velvd`.
//!
//! ```text
//! velvc [--addr HOST:PORT] ping
//! velvc [--addr HOST:PORT] submit KEY=VALUE...     # e.g. model=dlx1:bug:3 backend=chaff
//! velvc [--addr HOST:PORT] batch LINE [LINE...]    # one quoted job line per entry
//! velvc [--addr HOST:PORT] stats [--prom|--json]
//! velvc [--addr HOST:PORT] status
//! velvc [--addr HOST:PORT] proof FINGERPRINT
//! velvc [--addr HOST:PORT] shutdown
//! velvc trace FILE.jsonl                           # offline: check a trace capture
//! ```

use velv_serve::proto::Request;
use velv_serve::{JobSpec, ServeClient, StatsFormat};

fn usage() -> ! {
    eprintln!(
        "usage: velvc [--addr HOST:PORT] <ping|submit KEY=VALUE...|batch LINE...|stats [--prom|--json]|status|proof FP|shutdown> | velvc trace FILE.jsonl"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("velvc: {message}");
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7911".to_owned();
    if args.first().map(String::as_str) == Some("--addr") {
        if args.len() < 2 {
            usage();
        }
        addr = args[1].clone();
        args.drain(..2);
    }
    let Some(command) = args.first().cloned() else {
        usage();
    };
    let rest = &args[1..];

    // `trace` is offline — it checks a JSONL capture without a server.
    if command == "trace" {
        let Some(path) = rest.first() else {
            usage();
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => fail(format!("cannot read {path}: {e}")),
        };
        match velv_obs::tracecheck::check_trace(&text) {
            Ok(summary) => {
                println!("records       {}", summary.records);
                println!("spans opened  {}", summary.spans_opened);
                println!("spans closed  {}", summary.spans_closed);
                println!("events        {}", summary.events);
                println!("unclosed      {}", summary.unclosed);
            }
            Err(e) => fail(format!("malformed trace: {e}")),
        }
        return;
    }

    let mut client = match ServeClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => fail(format!("cannot connect to {addr}: {e}")),
    };

    match command.as_str() {
        "ping" => match client.ping() {
            Ok(()) => println!("pong"),
            Err(e) => fail(e),
        },
        "submit" => {
            if rest.is_empty() {
                usage();
            }
            let line = rest.join(" ");
            let spec = match JobSpec::parse_wire(&line) {
                Ok(spec) => spec,
                Err(e) => fail(e),
            };
            match client.submit(spec) {
                Ok(reply) => {
                    println!(
                        "{}: {}{} ({}, wall {:?}, solve {:?})",
                        reply.name,
                        reply.verdict,
                        reply
                            .reason
                            .as_ref()
                            .map(|r| format!(" [{r}]"))
                            .unwrap_or_default(),
                        if reply.cached {
                            "cache hit"
                        } else if reply.deduplicated {
                            "deduplicated"
                        } else {
                            "fresh solve"
                        },
                        reply.wall,
                        reply.solve_time,
                    );
                    println!("fingerprint {}", reply.fingerprint);
                    for name in &reply.cex_true {
                        println!("cex-true {name}");
                    }
                }
                Err(e) => fail(e),
            }
        }
        "batch" => {
            if rest.is_empty() {
                usage();
            }
            let mut specs = Vec::new();
            for line in rest {
                match JobSpec::parse_wire(line) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => fail(e),
                }
            }
            match client.batch(specs) {
                Ok(response) => {
                    for job in response.all("job") {
                        println!("{job}");
                    }
                }
                Err(e) => fail(e),
            }
        }
        "stats" => match rest.first().map(String::as_str) {
            Some("--prom") => match client.stats_text(StatsFormat::Prometheus) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(e),
            },
            Some("--json") => match client.stats_text(StatsFormat::Json) {
                Ok(text) => println!("{text}"),
                Err(e) => fail(e),
            },
            Some(_) => usage(),
            None => match client.stats() {
                Ok(fields) => {
                    for (key, value) in fields {
                        println!("{key:<44} {value}");
                    }
                }
                Err(e) => fail(e),
            },
        },
        "status" => match client.request(&Request::Status) {
            Ok(response) => {
                for (key, value) in &response.fields {
                    println!("{key:<10} {value}");
                }
            }
            Err(e) => fail(e),
        },
        "proof" => {
            let Some(fingerprint) = rest.first() else {
                usage();
            };
            match client.proof(fingerprint) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(e),
            }
        }
        "shutdown" => match client.shutdown() {
            Ok(()) => println!("server shutting down"),
            Err(e) => fail(e),
        },
        _ => usage(),
    }
}
