//! `velvc` — command-line client for `velvd`.
//!
//! ```text
//! velvc [FLAGS] ping
//! velvc [FLAGS] submit KEY=VALUE...     # e.g. model=dlx1:bug:3 backend=chaff
//! velvc [FLAGS] batch LINE [LINE...]    # one quoted job line per entry
//! velvc [FLAGS] stats [--prom|--json]
//! velvc [FLAGS] status
//! velvc [FLAGS] proof FINGERPRINT
//! velvc [FLAGS] shutdown
//! velvc trace FILE.jsonl                # offline: check a trace capture
//!
//! FLAGS: [--addr HOST:PORT] [--timeout MS] [--retries N] [--backoff-ms MS]
//! ```
//!
//! Exit codes distinguish failure classes for scripting: `0` success, `1`
//! server error, `2` usage, `3` server busy, `4` timeout, `5` connection
//! failure, `6` protocol violation.

use velv_serve::proto::Request;
use velv_serve::{ClientConfig, ClientError, JobSpec, ServeClient, StatsFormat};

fn usage() -> ! {
    eprintln!(
        "usage: velvc [--addr HOST:PORT] [--timeout MS] [--retries N] [--backoff-ms MS] \
         <ping|submit KEY=VALUE...|batch LINE...|stats [--prom|--json]|status|proof FP|shutdown> \
         | velvc trace FILE.jsonl"
    );
    std::process::exit(2);
}

/// Exit code of a classified client failure (see the module docs).
fn exit_code(error: &ClientError) -> i32 {
    match error {
        ClientError::Server(_) => 1,
        ClientError::Busy(_) => 3,
        ClientError::Timeout => 4,
        ClientError::Io(_) => 5,
        ClientError::Protocol(_) => 6,
    }
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("velvc: {message}");
    std::process::exit(1);
}

fn fail_client(error: ClientError) -> ! {
    let code = exit_code(&error);
    eprintln!("velvc: {error}");
    std::process::exit(code);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7911".to_owned();
    let mut config = ClientConfig::default();
    loop {
        let take_value = |args: &mut Vec<String>| {
            if args.len() < 2 {
                usage();
            }
            let value = args[1].clone();
            args.drain(..2);
            value
        };
        match args.first().map(String::as_str) {
            Some("--addr") => addr = take_value(&mut args),
            Some("--timeout") => match take_value(&mut args).parse::<u64>() {
                Ok(ms) => config.timeout = Some(std::time::Duration::from_millis(ms)),
                Err(_) => usage(),
            },
            Some("--retries") => match take_value(&mut args).parse::<u32>() {
                Ok(n) => config.retries = n,
                Err(_) => usage(),
            },
            Some("--backoff-ms") => match take_value(&mut args).parse::<u64>() {
                Ok(ms) => config.backoff = std::time::Duration::from_millis(ms),
                Err(_) => usage(),
            },
            _ => break,
        }
    }
    let Some(command) = args.first().cloned() else {
        usage();
    };
    let rest = &args[1..];

    // `trace` is offline — it checks a JSONL capture without a server.
    if command == "trace" {
        let Some(path) = rest.first() else {
            usage();
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => fail(format!("cannot read {path}: {e}")),
        };
        match velv_obs::tracecheck::check_trace(&text) {
            Ok(summary) => {
                println!("records       {}", summary.records);
                println!("spans opened  {}", summary.spans_opened);
                println!("spans closed  {}", summary.spans_closed);
                println!("events        {}", summary.events);
                println!("unclosed      {}", summary.unclosed);
            }
            Err(e) => fail(format!("malformed trace: {e}")),
        }
        return;
    }

    let mut client = match ServeClient::connect_with(addr.as_str(), config) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("velvc: cannot connect to {addr}: {e}");
            std::process::exit(5);
        }
    };

    match command.as_str() {
        "ping" => match client.ping() {
            Ok(()) => println!("pong"),
            Err(e) => fail_client(e),
        },
        "submit" => {
            if rest.is_empty() {
                usage();
            }
            let line = rest.join(" ");
            let spec = match JobSpec::parse_wire(&line) {
                Ok(spec) => spec,
                Err(e) => fail(e),
            };
            match client.submit(spec) {
                Ok(reply) => {
                    println!(
                        "{}: {}{} ({}, wall {:?}, solve {:?})",
                        reply.name,
                        reply.verdict,
                        reply
                            .reason
                            .as_ref()
                            .map(|r| format!(" [{r}]"))
                            .unwrap_or_default(),
                        if reply.cached {
                            "cache hit"
                        } else if reply.deduplicated {
                            "deduplicated"
                        } else {
                            "fresh solve"
                        },
                        reply.wall,
                        reply.solve_time,
                    );
                    println!("fingerprint {}", reply.fingerprint);
                    for name in &reply.cex_true {
                        println!("cex-true {name}");
                    }
                }
                Err(e) => fail_client(e),
            }
        }
        "batch" => {
            if rest.is_empty() {
                usage();
            }
            let mut specs = Vec::new();
            for line in rest {
                match JobSpec::parse_wire(line) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => fail(e),
                }
            }
            match client.batch(specs) {
                Ok(response) => {
                    for job in response.all("job") {
                        println!("{job}");
                    }
                }
                Err(e) => fail_client(e),
            }
        }
        "stats" => match rest.first().map(String::as_str) {
            Some("--prom") => match client.stats_text(StatsFormat::Prometheus) {
                Ok(text) => print!("{text}"),
                Err(e) => fail_client(e),
            },
            Some("--json") => match client.stats_text(StatsFormat::Json) {
                Ok(text) => println!("{text}"),
                Err(e) => fail_client(e),
            },
            Some(_) => usage(),
            None => match client.stats() {
                Ok(fields) => {
                    for (key, value) in fields {
                        println!("{key:<44} {value}");
                    }
                }
                Err(e) => fail_client(e),
            },
        },
        "status" => match client.request(&Request::Status) {
            Ok(response) => {
                for (key, value) in &response.fields {
                    println!("{key:<10} {value}");
                }
            }
            Err(e) => fail_client(e),
        },
        "proof" => {
            let Some(fingerprint) = rest.first() else {
                usage();
            };
            match client.proof(fingerprint) {
                Ok(text) => print!("{text}"),
                Err(e) => fail_client(e),
            }
        }
        "shutdown" => match client.shutdown() {
            Ok(()) => println!("server shutting down"),
            Err(e) => fail_client(e),
        },
        _ => usage(),
    }
}
