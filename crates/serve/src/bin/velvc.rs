//! `velvc` — command-line client for `velvd`.
//!
//! ```text
//! velvc [FLAGS] ping
//! velvc [FLAGS] submit KEY=VALUE...     # e.g. model=dlx1:bug:3 backend=chaff
//! velvc [FLAGS] batch LINE [LINE...]    # one quoted job line per entry
//! velvc [FLAGS] stats [--prom|--json]
//! velvc [FLAGS] status
//! velvc [FLAGS] top [--once] [--interval-ms N]
//! velvc [FLAGS] watch FINGERPRINT
//! velvc [FLAGS] flight                  # dump the server's flight ring
//! velvc [FLAGS] mem                     # heap usage, per-scope attribution
//! velvc [FLAGS] proof FINGERPRINT
//! velvc [FLAGS] profile FINGERPRINT [--raw]
//! velvc [FLAGS] shutdown
//! velvc trace FILE.jsonl [FILE...]      # offline: check trace captures
//!
//! FLAGS: [--addr HOST:PORT] [--timeout MS] [--retries N] [--backoff-ms MS]
//!        [--trace FILE.jsonl]
//! ```
//!
//! With `--trace FILE` the client records its own spans to `FILE` and mints
//! a 64-bit trace id: `submit` and `batch` open a root span tagged
//! `trace=<id>` and propagate the context over the wire, so the server's
//! `serve.job` span is recorded as a child of the client's root span.
//! `velvc trace server.jsonl client.jsonl` then validates the two captures
//! as one distributed trace.
//!
//! Exit codes distinguish failure classes for scripting: `0` success, `1`
//! server error, `2` usage, `3` server busy, `4` timeout, `5` connection
//! failure, `6` protocol violation.

use velv_serve::proto::{Request, Response};
use velv_serve::{ClientConfig, ClientError, JobSpec, ServeClient, StatsFormat, TraceContext};

fn usage() -> ! {
    eprintln!(
        "usage: velvc [--addr HOST:PORT] [--timeout MS] [--retries N] [--backoff-ms MS] \
         [--trace FILE.jsonl] \
         <ping|submit KEY=VALUE...|batch LINE...|stats [--prom|--json]|status\
         |top [--once] [--interval-ms N]|watch FP|flight|mem|proof FP|profile FP [--raw]\
         |shutdown> \
         | velvc trace FILE.jsonl [FILE...]"
    );
    std::process::exit(2);
}

/// Exit code of a classified client failure (see the module docs).
fn exit_code(error: &ClientError) -> i32 {
    match error {
        ClientError::Server(_) => 1,
        ClientError::Busy(_) => 3,
        ClientError::Timeout => 4,
        ClientError::Io(_) => 5,
        ClientError::Protocol(_) => 6,
    }
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("velvc: {message}");
    std::process::exit(1);
}

fn fail_client(error: ClientError) -> ! {
    let code = exit_code(&error);
    eprintln!("velvc: {error}");
    std::process::exit(code);
}

/// Mints a process-unique 64-bit trace id: wall-clock nanos folded with the
/// pid, never zero.
fn mint_trace_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    (nanos ^ u64::from(std::process::id()).rotate_left(32)).max(1)
}

/// Splits a `status` job row into `(fingerprint, key=value pairs)`.
fn parse_job_row(row: &str) -> (String, Vec<(String, String)>) {
    let mut parts = row.split_whitespace();
    let fingerprint = parts.next().unwrap_or("").to_owned();
    let pairs = parts
        .filter_map(|token| token.split_once('='))
        .map(|(k, v)| (k.to_owned(), v.to_owned()))
        .collect();
    (fingerprint, pairs)
}

/// Renders one `status` response as a `top`-style table.
fn render_top(response: &Response) -> String {
    let field = |key: &str| response.field(key).unwrap_or("?");
    let mut out = format!(
        "velvd  workers {}  queued {}  running {}  shut-down {}\n",
        field("workers"),
        field("queued"),
        field("running"),
        field("shut-down"),
    );
    let rows = response.all("job");
    if rows.is_empty() {
        out.push_str("(no jobs in flight)\n");
        return out;
    }
    out.push_str(&format!(
        "{:<12} {:<20} {:<6} {:>10} {:>10} {:>10} {:>8} {:>8} {:>6} {:>8}\n",
        "FINGERPRINT",
        "NAME",
        "CLASS",
        "ELAPSED-MS",
        "BUDGET-MS",
        "CONFLICTS",
        "CONF/S",
        "RESTARTS",
        "TRAIL",
        "LEARNTS"
    ));
    for row in rows {
        let (fingerprint, pairs) = parse_job_row(row);
        let get = |key: &str| {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .unwrap_or("-")
        };
        let short = &fingerprint[..fingerprint.len().min(12)];
        out.push_str(&format!(
            "{:<12} {:<20} {:<6} {:>10} {:>10} {:>10} {:>8} {:>8} {:>6} {:>8}\n",
            short,
            get("name"),
            get("class"),
            get("elapsed-ms"),
            get("budget-ms"),
            get("conflicts"),
            get("conflicts-per-sec"),
            get("restarts"),
            get("trail"),
            get("learnts"),
        ));
    }
    out
}

/// Renders one `mem` response: allocator headline numbers, then a per-scope
/// attribution table and the deep-measured structure footprints.
fn render_mem(response: &Response) -> String {
    let mut out = String::new();
    for key in [
        "live-bytes",
        "peak-bytes",
        "total-bytes",
        "allocations",
        "frees",
        "peak-rss-bytes",
        "pressure-level",
        "mem-limit-bytes",
    ] {
        out.push_str(&format!(
            "{key:<18} {}\n",
            response.field(key).unwrap_or("?")
        ));
    }
    let scopes = response.all("scope");
    if !scopes.is_empty() {
        out.push_str(&format!(
            "\n{:<14} {:>14} {:>14} {:>14}\n",
            "SCOPE", "LIVE", "PEAK", "TOTAL"
        ));
        for row in scopes {
            let mut parts = row.split_whitespace();
            let name = parts.next().unwrap_or("?");
            let get = |prefix: &str, parts: &mut std::str::SplitWhitespace| {
                parts
                    .next()
                    .and_then(|token| token.strip_prefix(prefix))
                    .unwrap_or("?")
                    .to_owned()
            };
            let live = get("live=", &mut parts);
            let peak = get("peak=", &mut parts);
            let total = get("total=", &mut parts);
            out.push_str(&format!("{name:<14} {live:>14} {peak:>14} {total:>14}\n"));
        }
    }
    let measured = response.all("measured");
    if !measured.is_empty() {
        out.push_str(&format!("\n{:<14} {:>14}\n", "MEASURED", "BYTES"));
        for row in measured {
            let mut parts = row.split_whitespace();
            let name = parts.next().unwrap_or("?");
            let bytes = parts.next().unwrap_or("?");
            out.push_str(&format!("{name:<14} {bytes:>14}\n"));
        }
    }
    out
}

/// The offline `trace` command: one file gets the per-file summary, several
/// files are validated as one distributed trace (non-zero exit on unclosed
/// or orphaned spans, so scripts can gate on it).
fn run_trace_check(paths: &[String]) -> ! {
    let mut contents = Vec::new();
    for path in paths {
        match std::fs::read_to_string(path) {
            Ok(text) => contents.push((path.as_str(), text)),
            Err(e) => fail(format!("cannot read {path}: {e}")),
        }
    }
    if let [(_, text)] = contents.as_slice() {
        match velv_obs::tracecheck::check_trace(text) {
            Ok(summary) => {
                println!("records       {}", summary.records);
                println!("spans opened  {}", summary.spans_opened);
                println!("spans closed  {}", summary.spans_closed);
                println!("events        {}", summary.events);
                println!("unclosed      {}", summary.unclosed);
                std::process::exit(0);
            }
            Err(e) => fail(format!("malformed trace: {e}")),
        }
    }
    let files: Vec<(&str, &str)> = contents
        .iter()
        .map(|(path, text)| (*path, text.as_str()))
        .collect();
    match velv_obs::check_traces(&files) {
        Ok(merged) => {
            println!("files         {}", merged.files);
            println!("records       {}", merged.totals.records);
            println!("spans opened  {}", merged.totals.spans_opened);
            println!("spans closed  {}", merged.totals.spans_closed);
            println!("events        {}", merged.totals.events);
            println!("unclosed      {}", merged.totals.unclosed);
            println!("traces        {}", merged.traces);
            println!("remote links  {}", merged.remote_links);
            println!("orphaned      {}", merged.orphaned);
            let durations = merged.durations.snapshot();
            if durations.count > 0 {
                for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                    println!("span dur {label}  {:.0}us", durations.quantile(q));
                }
            }
            if merged.totals.unclosed > 0 || merged.orphaned > 0 {
                eprintln!(
                    "velvc: merged trace has {} unclosed and {} orphaned spans",
                    merged.totals.unclosed, merged.orphaned
                );
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        Err(e) => fail(format!("malformed distributed trace: {e}")),
    }
}

fn print_submit_reply(reply: &velv_serve::SubmitReply) {
    println!(
        "{}: {}{} ({}, wall {:?}, solve {:?})",
        reply.name,
        reply.verdict,
        reply
            .reason
            .as_ref()
            .map(|r| format!(" [{r}]"))
            .unwrap_or_default(),
        if reply.cached {
            "cache hit"
        } else if reply.deduplicated {
            "deduplicated"
        } else {
            "fresh solve"
        },
        reply.wall,
        reply.solve_time,
    );
    println!("fingerprint {}", reply.fingerprint);
    for name in &reply.cex_true {
        println!("cex-true {name}");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7911".to_owned();
    let mut config = ClientConfig::default();
    let mut trace_file: Option<String> = None;
    loop {
        let take_value = |args: &mut Vec<String>| {
            if args.len() < 2 {
                usage();
            }
            let value = args[1].clone();
            args.drain(..2);
            value
        };
        match args.first().map(String::as_str) {
            Some("--addr") => addr = take_value(&mut args),
            Some("--trace") => trace_file = Some(take_value(&mut args)),
            Some("--timeout") => match take_value(&mut args).parse::<u64>() {
                Ok(ms) => config.timeout = Some(std::time::Duration::from_millis(ms)),
                Err(_) => usage(),
            },
            Some("--retries") => match take_value(&mut args).parse::<u32>() {
                Ok(n) => config.retries = n,
                Err(_) => usage(),
            },
            Some("--backoff-ms") => match take_value(&mut args).parse::<u64>() {
                Ok(ms) => config.backoff = std::time::Duration::from_millis(ms),
                Err(_) => usage(),
            },
            _ => break,
        }
    }
    let Some(command) = args.first().cloned() else {
        usage();
    };
    let rest = &args[1..];

    // `trace` is offline — it checks JSONL captures without a server.
    if command == "trace" {
        if rest.is_empty() {
            usage();
        }
        run_trace_check(rest);
    }

    // With `--trace FILE` the client records its own spans; submit/batch
    // mint a trace id and propagate the context to the server.
    let trace_context = trace_file.as_ref().map(|path| {
        match velv_obs::JsonlFileSink::create(path) {
            Ok(sink) => velv_obs::install_sink(std::sync::Arc::new(sink)),
            Err(e) => fail(format!("cannot create trace file {path}: {e}")),
        }
        mint_trace_id()
    });

    let mut client = match ServeClient::connect_with(addr.as_str(), config) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("velvc: cannot connect to {addr}: {e}");
            std::process::exit(5);
        }
    };

    match command.as_str() {
        "ping" => match client.ping() {
            Ok(()) => println!("pong"),
            Err(e) => fail_client(e),
        },
        "submit" => {
            if rest.is_empty() {
                usage();
            }
            let line = rest.join(" ");
            let spec = match JobSpec::parse_wire(&line) {
                Ok(spec) => spec,
                Err(e) => fail(e),
            };
            let outcome = {
                // The root span closes before the sink is flushed below, so
                // the capture always balances when the submission succeeds.
                let (root, context) = match trace_context {
                    Some(trace_id) => {
                        let root = velv_obs::span_fields(
                            "velvc.submit",
                            &[("trace", velv_obs::FieldValue::U64(trace_id))],
                        );
                        let context = TraceContext {
                            trace_id,
                            parent_span: root.id(),
                        };
                        (Some(root), Some(context))
                    }
                    None => (None, None),
                };
                let outcome = client.submit_traced(spec, context);
                drop(root);
                outcome
            };
            if trace_context.is_some() {
                velv_obs::uninstall_sink();
            }
            match outcome {
                Ok(reply) => print_submit_reply(&reply),
                Err(e) => fail_client(e),
            }
        }
        "batch" => {
            if rest.is_empty() {
                usage();
            }
            let mut specs = Vec::new();
            for line in rest {
                match JobSpec::parse_wire(line) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => fail(e),
                }
            }
            let outcome = {
                let (root, context) = match trace_context {
                    Some(trace_id) => {
                        let root = velv_obs::span_fields(
                            "velvc.batch",
                            &[("trace", velv_obs::FieldValue::U64(trace_id))],
                        );
                        let context = TraceContext {
                            trace_id,
                            parent_span: root.id(),
                        };
                        (Some(root), Some(context))
                    }
                    None => (None, None),
                };
                let outcome = client.batch_traced(specs, context);
                drop(root);
                outcome
            };
            if trace_context.is_some() {
                velv_obs::uninstall_sink();
            }
            match outcome {
                Ok(response) => {
                    for job in response.all("job") {
                        println!("{job}");
                    }
                }
                Err(e) => fail_client(e),
            }
        }
        "stats" => match rest.first().map(String::as_str) {
            Some("--prom") => match client.stats_text(StatsFormat::Prometheus) {
                Ok(text) => print!("{text}"),
                Err(e) => fail_client(e),
            },
            Some("--json") => match client.stats_text(StatsFormat::Json) {
                Ok(text) => println!("{text}"),
                Err(e) => fail_client(e),
            },
            Some(_) => usage(),
            None => match client.stats() {
                Ok(fields) => {
                    for (key, value) in fields {
                        println!("{key:<44} {value}");
                    }
                }
                Err(e) => fail_client(e),
            },
        },
        "status" => match client.request(&Request::Status) {
            Ok(response) => {
                for (key, value) in &response.fields {
                    println!("{key:<10} {value}");
                }
            }
            Err(e) => fail_client(e),
        },
        "top" => {
            let mut once = false;
            let mut interval = std::time::Duration::from_millis(1000);
            let mut iter = rest.iter();
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--once" => once = true,
                    "--interval-ms" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                        Some(ms) => interval = std::time::Duration::from_millis(ms.max(100)),
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            loop {
                let response = match client.status() {
                    Ok(response) => response,
                    Err(e) => fail_client(e),
                };
                if once {
                    print!("{}", render_top(&response));
                } else {
                    // Clear the screen and repaint, `top`-style.
                    print!("\x1b[2J\x1b[H{}", render_top(&response));
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                }
                if once || response.field("shut-down") == Some("1") {
                    break;
                }
                std::thread::sleep(interval);
            }
        }
        "watch" => {
            let Some(prefix) = rest.first() else {
                usage();
            };
            let mut seen = false;
            loop {
                let response = match client.status() {
                    Ok(response) => response,
                    Err(e) => fail_client(e),
                };
                let row = response
                    .all("job")
                    .into_iter()
                    .map(String::from)
                    .find(|row| parse_job_row(row).0.starts_with(prefix.as_str()));
                match row {
                    Some(row) => {
                        seen = true;
                        println!("{row}");
                    }
                    None if seen => {
                        println!("{prefix}: no longer in flight (finished)");
                        break;
                    }
                    None => {
                        println!("{prefix}: not in flight (already finished or never submitted)");
                        break;
                    }
                }
                if response.field("shut-down") == Some("1") {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(500));
            }
        }
        "mem" => match client.mem() {
            Ok(response) => print!("{}", render_mem(&response)),
            Err(e) => fail_client(e),
        },
        "flight" => match client.flight() {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
            }
            Err(e) => fail_client(e),
        },
        "proof" => {
            let Some(fingerprint) = rest.first() else {
                usage();
            };
            match client.proof(fingerprint) {
                Ok(text) => print!("{text}"),
                Err(e) => fail_client(e),
            }
        }
        "profile" => {
            let Some(fingerprint) = rest.first() else {
                usage();
            };
            let raw = rest.iter().any(|a| a == "--raw");
            match client.profile(fingerprint) {
                Ok(text) => {
                    if raw {
                        print!("{text}");
                    } else {
                        match velv_obs::SolveProfile::parse(&text) {
                            Ok(profile) => print!("{}", profile.render_text()),
                            // Unparseable profiles (e.g. a newer server) still
                            // dump raw so the bytes are never unreachable.
                            Err(e) => {
                                eprintln!("warning: could not parse profile ({e}); raw dump:");
                                print!("{text}");
                            }
                        }
                    }
                }
                Err(e) => fail_client(e),
            }
        }
        "shutdown" => match client.shutdown() {
            Ok(()) => println!("server shutting down"),
            Err(e) => fail_client(e),
        },
        _ => usage(),
    }
}
