//! `velvd` — the verification service daemon.
//!
//! Serves the `velv_serve` wire protocol over TCP and prints a final metric
//! registry snapshot when a client asks it to shut down.  With `--trace` the
//! daemon records spans and events to a JSONL file; the graceful shutdown
//! path flushes every per-thread trace buffer before exit, so the capture
//! never loses its tail.
//!
//! With `--store DIR` the daemon appends every decided verdict to a
//! crash-safe log before answering, and replays the log into the cache on
//! boot — a `kill -9` mid-burst loses no answered verdict, and the restarted
//! daemon serves repeats from cache without re-solving.
//!
//! The flight recorder is always armed while the service runs; with
//! `--flight-record DIR` its post-mortem dumps (worker panic, store append
//! failure, shed storm, graceful shutdown) land in `DIR` as
//! `FLIGHT-<ts>.jsonl` files instead of the working directory.
//!
//! With `--mem-limit BYTES` the daemon watches its own heap (the counting
//! allocator is installed as the global allocator) and degrades in stages as
//! live bytes approach the limit: at 60% it shrinks the verdict cache, at 80%
//! it sheds the lower-priority half of the queue, at 95% it refuses fresh
//! submissions with `busy`.  Cache hits and dedup joins keep being served at
//! every stage.
//!
//! ```text
//! velvd [--addr HOST:PORT] [--workers N] [--cache-mb M] [--default-timeout-ms T]
//!       [--store DIR] [--fsync always|os|every-N] [--max-queue N] [--client-quota N]
//!       [--trace FILE.jsonl] [--flight-record DIR] [--slo-target-ms T]
//!       [--mem-limit BYTES]
//! ```

use std::sync::Arc;
use std::time::Duration;
use velv_serve::{serve, ServeHandle, ServiceConfig};

/// Every allocation the daemon makes is counted: this is what `velvc mem`
/// reports and what `--mem-limit` compares live bytes against.
#[global_allocator]
static ALLOC: velv_obs::CountingAlloc = velv_obs::CountingAlloc;

fn usage() -> ! {
    eprintln!(
        "usage: velvd [--addr HOST:PORT] [--workers N] [--cache-mb M] [--default-timeout-ms T] \
         [--store DIR] [--fsync always|os|every-N] [--max-queue N] [--client-quota N] \
         [--trace FILE.jsonl] [--flight-record DIR] [--slo-target-ms T] [--mem-limit BYTES]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7911".to_owned();
    let mut config = ServiceConfig::default();
    let mut trace_path: Option<String> = None;
    let mut flight_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = value(),
            "--trace" => trace_path = Some(value()),
            "--flight-record" => flight_dir = Some(value()),
            "--slo-target-ms" => match value().parse::<u64>() {
                Ok(ms) => config.slo_target = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--workers" => match value().parse() {
                Ok(n) => config.workers = n,
                Err(_) => usage(),
            },
            "--cache-mb" => match value().parse::<usize>() {
                Ok(mb) => config.cache_bytes = mb << 20,
                Err(_) => usage(),
            },
            "--default-timeout-ms" => match value().parse::<u64>() {
                Ok(ms) => config.default_timeout = Some(Duration::from_millis(ms)),
                Err(_) => usage(),
            },
            "--store" => config.store_dir = Some(value().into()),
            "--fsync" => match velv_store::FsyncPolicy::parse(&value()) {
                Ok(policy) => config.store_fsync = policy,
                Err(e) => {
                    eprintln!("velvd: {e}");
                    usage()
                }
            },
            "--max-queue" => match value().parse::<usize>() {
                Ok(n) => config.max_queue_depth = Some(n),
                Err(_) => usage(),
            },
            "--client-quota" => match value().parse::<usize>() {
                Ok(n) => config.per_client_quota = n,
                Err(_) => usage(),
            },
            "--mem-limit" => match value().parse::<u64>() {
                Ok(bytes) if bytes > 0 => config.mem_limit = Some(bytes),
                _ => usage(),
            },
            _ => usage(),
        }
    }

    // The profile sink is always armed: it folds each job's spans into the
    // phase tree served by `velvc profile`.  With `--trace` it tees every
    // line on to the JSONL file sink.
    let profile_sink = if let Some(path) = &trace_path {
        let file_sink = match velv_obs::JsonlFileSink::create(path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("velvd: cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        };
        println!("velvd: tracing to {path}");
        Arc::new(velv_obs::ProfileSink::with_inner(Arc::new(file_sink)))
    } else {
        Arc::new(velv_obs::ProfileSink::new())
    };
    velv_obs::install_sink(profile_sink.clone());
    config.profile_sink = Some(profile_sink);

    if let Some(dir) = &flight_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("velvd: cannot create flight-record dir {dir}: {e}");
            std::process::exit(1);
        }
        velv_obs::flight::set_dump_dir(Some(std::path::Path::new(dir)));
        println!("velvd: flight dumps land in {dir}");
    }

    let workers = config.workers;
    let handle = match ServeHandle::try_start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("velvd: cannot start the service: {e}");
            std::process::exit(1);
        }
    };
    if let Some(report) = handle.store_recovery() {
        println!(
            "velvd: verdict store recovered {} live of {} records ({} bytes truncated) in {:?}",
            report.live, report.records, report.truncated_bytes, report.scan_time
        );
    }
    let control = match serve(handle.clone(), addr.as_str()) {
        Ok(control) => control,
        Err(e) => {
            eprintln!("velvd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "velvd: serving on {} with {} workers (shut down with `velvc shutdown`)",
        control.addr(),
        workers
    );
    control.wait();

    // Graceful shutdown: drain every per-thread trace buffer into the sink
    // before logging the final snapshot, so the capture keeps its tail.
    velv_obs::uninstall_sink();
    let snapshot = handle.registry_snapshot();
    println!("velvd: shut down; final registry snapshot:");
    for (key, value) in snapshot.flat_fields() {
        println!("  {key:<44} {value}");
    }
}
