//! `velvd` — the verification service daemon.
//!
//! Serves the `velv_serve` wire protocol over TCP and prints a counter
//! summary when a client asks it to shut down.
//!
//! ```text
//! velvd [--addr HOST:PORT] [--workers N] [--cache-mb M] [--default-timeout-ms T]
//! ```

use std::time::Duration;
use velv_serve::{serve, ServeHandle, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: velvd [--addr HOST:PORT] [--workers N] [--cache-mb M] [--default-timeout-ms T]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7911".to_owned();
    let mut config = ServiceConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = value(),
            "--workers" => match value().parse() {
                Ok(n) => config.workers = n,
                Err(_) => usage(),
            },
            "--cache-mb" => match value().parse::<usize>() {
                Ok(mb) => config.cache_bytes = mb << 20,
                Err(_) => usage(),
            },
            "--default-timeout-ms" => match value().parse::<u64>() {
                Ok(ms) => config.default_timeout = Some(Duration::from_millis(ms)),
                Err(_) => usage(),
            },
            _ => usage(),
        }
    }

    let workers = config.workers;
    let handle = ServeHandle::start(config);
    let control = match serve(handle.clone(), addr.as_str()) {
        Ok(control) => control,
        Err(e) => {
            eprintln!("velvd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "velvd: serving on {} with {} workers (shut down with `velvc shutdown`)",
        control.addr(),
        workers
    );
    control.wait();

    let stats = handle.stats();
    println!("velvd: shut down; final counters:");
    for (key, value) in stats.fields() {
        println!("  {key:<22} {value}");
    }
}
