//! `velvd` — the verification service daemon.
//!
//! Serves the `velv_serve` wire protocol over TCP and prints a final metric
//! registry snapshot when a client asks it to shut down.  With `--trace` the
//! daemon records spans and events to a JSONL file; the graceful shutdown
//! path flushes every per-thread trace buffer before exit, so the capture
//! never loses its tail.
//!
//! ```text
//! velvd [--addr HOST:PORT] [--workers N] [--cache-mb M] [--default-timeout-ms T] [--trace FILE.jsonl]
//! ```

use std::sync::Arc;
use std::time::Duration;
use velv_serve::{serve, ServeHandle, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: velvd [--addr HOST:PORT] [--workers N] [--cache-mb M] [--default-timeout-ms T] [--trace FILE.jsonl]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7911".to_owned();
    let mut config = ServiceConfig::default();
    let mut trace_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = value(),
            "--trace" => trace_path = Some(value()),
            "--workers" => match value().parse() {
                Ok(n) => config.workers = n,
                Err(_) => usage(),
            },
            "--cache-mb" => match value().parse::<usize>() {
                Ok(mb) => config.cache_bytes = mb << 20,
                Err(_) => usage(),
            },
            "--default-timeout-ms" => match value().parse::<u64>() {
                Ok(ms) => config.default_timeout = Some(Duration::from_millis(ms)),
                Err(_) => usage(),
            },
            _ => usage(),
        }
    }

    if let Some(path) = &trace_path {
        match velv_obs::JsonlFileSink::create(path) {
            Ok(sink) => velv_obs::install_sink(Arc::new(sink)),
            Err(e) => {
                eprintln!("velvd: cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        }
        println!("velvd: tracing to {path}");
    }

    let workers = config.workers;
    let handle = ServeHandle::start(config);
    let control = match serve(handle.clone(), addr.as_str()) {
        Ok(control) => control,
        Err(e) => {
            eprintln!("velvd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "velvd: serving on {} with {} workers (shut down with `velvc shutdown`)",
        control.addr(),
        workers
    );
    control.wait();

    // Graceful shutdown: drain every per-thread trace buffer into the sink
    // before logging the final snapshot, so the capture keeps its tail.
    if trace_path.is_some() {
        velv_obs::uninstall_sink();
    }
    let snapshot = handle.registry_snapshot();
    println!("velvd: shut down; final registry snapshot:");
    for (key, value) in snapshot.flat_fields() {
        println!("  {key:<44} {value}");
    }
}
