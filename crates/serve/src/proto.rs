//! The hand-rolled wire protocol of `velvd`/`velvc`.
//!
//! Transport: **length-prefixed text frames** over any byte stream.  A frame
//! is the byte length of the body as ASCII decimal, a newline, then exactly
//! that many body bytes:
//!
//! ```text
//! <len>\n<body>
//! ```
//!
//! The body is UTF-8 text.  A *request* body is a command on the first line,
//! arguments on the following lines; a *response* body starts with `ok` or
//! `err <message>`, followed by `key value` fields (and, for `proof`, the raw
//! DRAT text after a blank line).
//!
//! Commands:
//!
//! | command | body lines | response fields |
//! |---|---|---|
//! | `ping` | — | `pong 1` |
//! | `submit` | optional `trace <id> <span>` line, then one [`JobSpec`] wire line | verdict fields (below) |
//! | `batch` | optional `trace <id> <span>` line, then one [`JobSpec`] wire line per entry | `count N`, then one `job i ...` line per entry |
//! | `stats` | optional format line: `prom` or `json` | one `key value` line per metric (flat), or the encoded registry snapshot as payload |
//! | `status` | — | `workers`, `queued`, `running`, `shut-down`, then one `job <fingerprint> ...` line per in-flight job |
//! | `proof` | one fingerprint (32 hex digits) | `proof-bytes N`, blank line, DRAT text |
//! | `profile` | one fingerprint (32 hex digits) | `profile-bytes N`, blank line, [`velv_obs::SolveProfile`] JSONL |
//! | `flight` | — | `lines N`, blank line, flight-recorder JSONL snapshot |
//! | `mem` | — | `live-bytes`, `peak-bytes`, `total-bytes`, `allocations`, `frees`, `peak-rss-bytes`, `pressure-level`, `mem-limit-bytes`, one `scope <name> live=N peak=N total=N` line per allocation scope, one `measured <name> N` line per deep-measured structure |
//! | `shutdown` | — | `bye 1` |
//!
//! `submit` verdict fields: `name`, `fingerprint`, `verdict`
//! (`correct`/`buggy`/`unknown`), `reason` (unknown only), `cached`, `dedup`
//! (0/1), `wall-us`, `solve-us`, and one `cex-true <variable>` line per true
//! primary variable of a counterexample.
//!
//! The `trace` line carries the client's [`TraceContext`] — its 64-bit trace
//! id and the span id of its root span, both as decimal — so the server can
//! parent its `serve.job` span under the client's span across the process
//! boundary (the span is tagged with `trace=`/`remote_parent=` fields that
//! [`velv_obs::check_traces`] resolves when merging the two JSONL files).
//! The context is scheduling metadata, never part of the job's identity: a
//! deduplicated submission keeps the trace of the *first* submitter.
//!
//! The protocol is deliberately human-readable: `printf '26\nsubmit\nmodel=dlx1:correct' | nc host 7911`
//! is a valid client.

use crate::job::JobSpec;
use crate::service::JobResult;
use std::io::{self, BufRead, Write};
use velv_core::Verdict;
use velv_eufm::Fingerprint;

/// Frames larger than this are rejected (defence against garbage lengths).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one `<len>\n<body>` frame.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame<W: Write>(writer: &mut W, body: &str) -> io::Result<()> {
    write!(writer, "{}\n{}", body.len(), body)?;
    writer.flush()
}

/// Reads one frame; `Ok(None)` on a clean end of stream before the length
/// line.
///
/// # Errors
///
/// Fails on transport errors, malformed/oversized lengths, truncated bodies,
/// or non-UTF-8 body bytes.
pub fn read_frame<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    // Bound the header read: a peer streaming digits without a newline must
    // not grow the header string (and the process) without limit.
    const MAX_HEADER_BYTES: u64 = 32;
    let mut limited = io::Read::take(&mut *reader, MAX_HEADER_BYTES);
    let mut header = String::new();
    if limited.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    if !header.ends_with('\n') && limited.limit() == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length header exceeds 32 bytes",
        ));
    }
    let len: usize = header.trim_end_matches(['\r', '\n']).parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {header:?}"),
        )
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    // Read the body in bounded chunks rather than allocating `len` bytes up
    // front: a peer declaring a 16 MB frame and sending three bytes costs one
    // chunk of memory, not the declared length.
    const BODY_CHUNK: usize = 64 * 1024;
    let mut body: Vec<u8> = Vec::with_capacity(len.min(BODY_CHUNK));
    while body.len() < len {
        let take = (len - body.len()).min(BODY_CHUNK);
        let start = body.len();
        body.resize(start + take, 0);
        reader.read_exact(&mut body[start..]).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame body truncated at {start} of {len} bytes"),
                )
            } else {
                e
            }
        })?;
    }
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame body is not UTF-8"))
}

/// Encoding requested for a `stats` response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StatsFormat {
    /// `key value` lines, one per metric (histograms as `_count`/`_sum`).
    #[default]
    Flat,
    /// Prometheus text exposition format, sent as the response payload.
    Prometheus,
    /// JSON snapshot, sent as the response payload.
    Json,
}

/// A client's trace context, carried on `submit`/`batch` frames so the
/// server's spans become children of the client's root span in a merged
/// multi-process trace.  See the [module docs](self) for the wire form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The 64-bit id naming the distributed trace.
    pub trace_id: u64,
    /// The span id (in the *client's* process) the server should parent
    /// under.
    pub parent_span: u64,
}

impl TraceContext {
    /// The `trace <id> <span>` wire line.
    pub fn to_wire(&self) -> String {
        format!("trace {} {}", self.trace_id, self.parent_span)
    }

    /// Parses a `trace <id> <span>` line; `None` when `line` is not a trace
    /// line, `Some(Err)` when it is one but malformed.
    pub fn parse_wire(line: &str) -> Option<Result<TraceContext, String>> {
        let rest = line.strip_prefix("trace ")?;
        let mut parts = rest.split_whitespace();
        let parse = |token: Option<&str>| {
            token
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| format!("malformed trace line `{line}`"))
        };
        let context = (|| {
            let trace_id = parse(parts.next())?;
            let parent_span = parse(parts.next())?;
            if parts.next().is_some() {
                return Err(format!("trailing fields in trace line `{line}`"));
            }
            Ok(TraceContext {
                trace_id,
                parent_span,
            })
        })();
        Some(context)
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit one job and wait for its verdict.
    Submit {
        /// The job.
        spec: JobSpec,
        /// The client's trace context, if it is tracing.
        trace: Option<TraceContext>,
    },
    /// Submit a batch and wait for every verdict.
    Batch {
        /// The jobs, in response order.
        specs: Vec<JobSpec>,
        /// The client's trace context, if it is tracing.
        trace: Option<TraceContext>,
    },
    /// Service metric registry snapshot in the requested encoding.
    Stats(StatsFormat),
    /// Scheduler gauges plus per-job progress rows.
    Status,
    /// Retrieve the cached DRAT artifact of a fingerprint.
    Proof(Fingerprint),
    /// Retrieve the cached solve profile of a fingerprint.
    Profile(Fingerprint),
    /// Snapshot the flight recorder ring.
    Flight,
    /// Memory snapshot: allocator globals, per-scope attribution, measured
    /// footprints and the pressure level.
    Mem,
    /// Stop the server.
    Shutdown,
}

impl Request {
    /// Serializes the request into a frame body.
    pub fn to_body(&self) -> String {
        match self {
            Request::Ping => "ping".to_owned(),
            Request::Submit { spec, trace } => {
                let mut body = "submit".to_owned();
                if let Some(context) = trace {
                    body.push('\n');
                    body.push_str(&context.to_wire());
                }
                body.push('\n');
                body.push_str(&spec.to_wire());
                body
            }
            Request::Batch { specs, trace } => {
                let mut body = "batch".to_owned();
                if let Some(context) = trace {
                    body.push('\n');
                    body.push_str(&context.to_wire());
                }
                for spec in specs {
                    body.push('\n');
                    body.push_str(&spec.to_wire());
                }
                body
            }
            Request::Stats(StatsFormat::Flat) => "stats".to_owned(),
            Request::Stats(StatsFormat::Prometheus) => "stats\nprom".to_owned(),
            Request::Stats(StatsFormat::Json) => "stats\njson".to_owned(),
            Request::Status => "status".to_owned(),
            Request::Proof(fp) => format!("proof\n{fp}"),
            Request::Profile(fp) => format!("profile\n{fp}"),
            Request::Flight => "flight".to_owned(),
            Request::Mem => "mem".to_owned(),
            Request::Shutdown => "shutdown".to_owned(),
        }
    }

    /// Parses a frame body into a request.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown commands or malformed
    /// arguments (the server echoes it back as `err <message>`).
    pub fn parse_body(body: &str) -> Result<Request, String> {
        let mut lines = body.lines();
        let command = lines.next().unwrap_or("").trim();
        match command {
            "ping" => Ok(Request::Ping),
            "stats" => match lines.next().map(str::trim).unwrap_or("") {
                "" => Ok(Request::Stats(StatsFormat::Flat)),
                "prom" => Ok(Request::Stats(StatsFormat::Prometheus)),
                "json" => Ok(Request::Stats(StatsFormat::Json)),
                other => Err(format!("unknown stats format `{other}`")),
            },
            "status" => Ok(Request::Status),
            "flight" => Ok(Request::Flight),
            "mem" => Ok(Request::Mem),
            "shutdown" => Ok(Request::Shutdown),
            "submit" => {
                let mut line = lines.next().ok_or("submit needs a job line")?;
                let mut trace = None;
                if let Some(parsed) = TraceContext::parse_wire(line) {
                    trace = Some(parsed?);
                    line = lines.next().ok_or("submit needs a job line")?;
                }
                let spec = JobSpec::parse_wire(line).map_err(|e| e.to_string())?;
                Ok(Request::Submit { spec, trace })
            }
            "batch" => {
                let mut trace = None;
                let mut specs = Vec::new();
                let mut first = true;
                for line in lines {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if std::mem::take(&mut first) {
                        if let Some(parsed) = TraceContext::parse_wire(line) {
                            trace = Some(parsed?);
                            continue;
                        }
                    }
                    specs.push(JobSpec::parse_wire(line).map_err(|e| e.to_string())?);
                }
                if specs.is_empty() {
                    return Err("batch needs at least one job line".to_owned());
                }
                Ok(Request::Batch { specs, trace })
            }
            "proof" => {
                let hex = lines.next().ok_or("proof needs a fingerprint")?.trim();
                Fingerprint::from_hex(hex)
                    .map(Request::Proof)
                    .ok_or_else(|| format!("bad fingerprint `{hex}`"))
            }
            "profile" => {
                let hex = lines.next().ok_or("profile needs a fingerprint")?.trim();
                Fingerprint::from_hex(hex)
                    .map(Request::Profile)
                    .ok_or_else(|| format!("bad fingerprint `{hex}`"))
            }
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

/// Label of a verdict on the wire.
pub fn verdict_label(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Correct => "correct",
        Verdict::Buggy(_) => "buggy",
        Verdict::Unknown(_) => "unknown",
    }
}

/// Renders a successful `submit` response body.
pub fn submit_response(fingerprint: Fingerprint, result: &JobResult) -> String {
    let mut body = format!(
        "ok\nname {}\nfingerprint {}\nverdict {}\ncached {}\ndedup {}\nwall-us {}\nsolve-us {}",
        result.name,
        fingerprint,
        verdict_label(&result.verdict),
        u8::from(result.from_cache),
        u8::from(result.deduplicated),
        result.wall.as_micros(),
        result.solve_time.as_micros(),
    );
    match &result.verdict {
        Verdict::Unknown(reason) => {
            body.push_str("\nreason ");
            body.push_str(&reason.replace('\n', " "));
        }
        Verdict::Buggy(cex) => {
            for name in cex.true_assignments() {
                body.push_str("\ncex-true ");
                body.push_str(name);
            }
        }
        Verdict::Correct => {}
    }
    body
}

/// Renders a successful `batch` response body; results are in input order.
pub fn batch_response(results: &[(Fingerprint, JobResult)]) -> String {
    let mut body = format!("ok\ncount {}", results.len());
    for (index, (fingerprint, result)) in results.iter().enumerate() {
        body.push_str(&format!(
            "\njob {index} name={} fingerprint={} verdict={} cached={} dedup={} wall-us={}",
            result.name.replace(' ', "_"),
            fingerprint,
            verdict_label(&result.verdict),
            u8::from(result.from_cache),
            u8::from(result.deduplicated),
            result.wall.as_micros(),
        ));
    }
    body
}

/// Renders the `flight` response body: the ring snapshot as the payload,
/// oldest record first, with a `lines` field so clients can sanity-check.
pub fn flight_response(lines: &[String]) -> String {
    let mut body = format!("ok\nlines {}\n", lines.len());
    body.push('\n');
    body.push_str(&lines.join("\n"));
    body
}

/// Renders the `mem` response body: the allocator's global figures, the
/// pressure state, one `scope` line per allocation scope, and one `measured`
/// line per deep-measured structure (the cross-check against the scope
/// attribution).  All figures are zero when the host did not install
/// [`velv_obs::CountingAlloc`].
pub fn mem_response(
    snapshot: &velv_obs::MemSnapshot,
    pressure_level: u64,
    mem_limit: Option<u64>,
    measured: &[(&str, u64)],
) -> String {
    let mut body = format!(
        "ok\nlive-bytes {}\npeak-bytes {}\ntotal-bytes {}\nallocations {}\nfrees {}\npeak-rss-bytes {}\npressure-level {}\nmem-limit-bytes {}",
        snapshot.live_bytes,
        snapshot.peak_bytes,
        snapshot.total_bytes,
        snapshot.allocations,
        snapshot.frees,
        snapshot.peak_rss_bytes,
        pressure_level,
        mem_limit.unwrap_or(0),
    );
    for scope in &snapshot.scopes {
        body.push_str(&format!(
            "\nscope {} live={} peak={} total={}",
            scope.name, scope.live_bytes, scope.peak_bytes, scope.total_bytes
        ));
    }
    for (name, bytes) in measured {
        body.push_str(&format!("\nmeasured {name} {bytes}"));
    }
    body
}

/// Renders the `stats` response body from a metric registry snapshot.
///
/// The flat encoding emits every registered metric as a `key value` field
/// line, so any metric added to the registry automatically reaches the wire.
/// The Prometheus and JSON encodings ship the full snapshot as the response
/// payload (after the blank line), with a `format` field naming the encoding.
pub fn stats_response(snapshot: &velv_obs::Snapshot, format: StatsFormat) -> String {
    match format {
        StatsFormat::Flat => {
            let mut body = "ok".to_owned();
            for (key, value) in snapshot.flat_fields() {
                body.push_str(&format!("\n{key} {value}"));
            }
            body
        }
        StatsFormat::Prometheus => {
            format!("ok\nformat prometheus\n\n{}", snapshot.prometheus_text())
        }
        StatsFormat::Json => format!("ok\nformat json\n\n{}", snapshot.json()),
    }
}

/// A parsed `ok` response: `key value` fields plus any raw payload after a
/// blank line (the DRAT text of a `proof` response).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Response {
    /// The `key value` fields, in response order (repeated keys allowed:
    /// `cex-true`, `job`).
    pub fields: Vec<(String, String)>,
    /// Raw payload after the first blank line, if any.
    pub payload: Option<String>,
}

impl Response {
    /// First value of a field.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of a repeated field.
    pub fn all(&self, key: &str) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Parses a response body; `Err` carries the server's `err` message.
    ///
    /// # Errors
    ///
    /// Returns the server-reported error for `err` bodies, or a local
    /// description for malformed ones.
    pub fn parse_body(body: &str) -> Result<Response, String> {
        let (head, payload) = match body.split_once("\n\n") {
            Some((head, payload)) => (head, Some(payload.to_owned())),
            None => (body, None),
        };
        let mut lines = head.lines();
        let status = lines.next().unwrap_or("");
        if let Some(message) = status.strip_prefix("err ") {
            return Err(message.to_owned());
        }
        if let Some(message) = status.strip_prefix("busy ") {
            // Overload rejections are a first-class status so clients can
            // back off and retry; `ServeClient` surfaces them typed.
            return Err(format!("busy: {message}"));
        }
        if status.trim() != "ok" {
            return Err(format!("malformed response status `{status}`"));
        }
        let mut fields = Vec::new();
        for line in lines {
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            fields.push((key.to_owned(), value.to_owned()));
        }
        Ok(Response { fields, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ModelRef;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, "hello\nworld").unwrap();
        write_frame(&mut buffer, "").unwrap();
        let mut reader = BufReader::new(buffer.as_slice());
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some("hello\nworld")
        );
        assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn bad_frames_are_rejected() {
        let mut reader = BufReader::new("nonsense\n".as_bytes());
        assert!(read_frame(&mut reader).is_err());
        let mut reader = BufReader::new("99999999999\n".as_bytes());
        assert!(read_frame(&mut reader).is_err());
        let mut reader = BufReader::new("10\nshort".as_bytes());
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn endless_length_headers_are_cut_off() {
        // A peer streaming digits with no newline must not grow the header
        // without bound: the read is capped, not buffered forever.
        let digits = vec![b'9'; 1 << 20];
        let mut reader = BufReader::new(digits.as_slice());
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Ping,
            Request::Stats(StatsFormat::Flat),
            Request::Stats(StatsFormat::Prometheus),
            Request::Stats(StatsFormat::Json),
            Request::Status,
            Request::Flight,
            Request::Shutdown,
            Request::Submit {
                spec: JobSpec::new(ModelRef::dlx1_bug(1)),
                trace: None,
            },
            Request::Submit {
                spec: JobSpec::new(ModelRef::dlx1_bug(1)),
                trace: Some(TraceContext {
                    trace_id: 0xDEAD_BEEF_CAFE,
                    parent_span: 42,
                }),
            },
            Request::Batch {
                specs: vec![
                    JobSpec::new(ModelRef::dlx1_correct()),
                    JobSpec::new(ModelRef::dlx1_bug(0)),
                ],
                trace: None,
            },
            Request::Batch {
                specs: vec![JobSpec::new(ModelRef::dlx1_correct())],
                trace: Some(TraceContext {
                    trace_id: 7,
                    parent_span: 1,
                }),
            },
            Request::Proof(Fingerprint(0xabcdef)),
            Request::Profile(Fingerprint(0xabcdef)),
            Request::Mem,
        ];
        for request in requests {
            let body = request.to_body();
            assert_eq!(Request::parse_body(&body), Ok(request), "{body}");
        }
        assert!(Request::parse_body("frobnicate").is_err());
        assert!(Request::parse_body("stats\nxml").is_err());
        assert!(Request::parse_body("submit").is_err());
        assert!(Request::parse_body("submit\ntrace 1 2").is_err());
        assert!(Request::parse_body("submit\ntrace 1\nmodel=dlx1:correct").is_err());
        assert!(Request::parse_body("submit\ntrace 1 2 3\nmodel=dlx1:correct").is_err());
        assert!(Request::parse_body("batch\n\n").is_err());
        assert!(Request::parse_body("batch\ntrace 5 6").is_err());
        assert!(Request::parse_body("proof\nzz").is_err());
        assert!(Request::parse_body("profile\nzz").is_err());
        assert!(Request::parse_body("profile").is_err());
    }

    #[test]
    fn trace_lines_parse_and_reject() {
        let context = TraceContext {
            trace_id: 99,
            parent_span: 3,
        };
        assert_eq!(context.to_wire(), "trace 99 3");
        assert_eq!(TraceContext::parse_wire("trace 99 3"), Some(Ok(context)));
        assert_eq!(TraceContext::parse_wire("model=dlx1:correct"), None);
        assert!(TraceContext::parse_wire("trace nine 3").unwrap().is_err());
        assert!(TraceContext::parse_wire("trace 9").unwrap().is_err());
        assert!(TraceContext::parse_wire("trace 9 3 1").unwrap().is_err());
    }

    #[test]
    fn flight_responses_carry_the_ring_as_payload() {
        let lines = vec![
            "{\"type\":\"event\",\"name\":\"a\"}".to_owned(),
            "{\"type\":\"event\",\"name\":\"b\"}".to_owned(),
        ];
        let body = flight_response(&lines);
        let response = Response::parse_body(&body).unwrap();
        assert_eq!(response.field("lines"), Some("2"));
        let payload = response.payload.unwrap();
        assert_eq!(payload.lines().count(), 2);

        let empty = Response::parse_body(&flight_response(&[])).unwrap();
        assert_eq!(empty.field("lines"), Some("0"));
    }

    #[test]
    fn truncated_bodies_fail_without_upfront_allocation() {
        // A frame declaring the full 16 MB cap but delivering three bytes
        // must fail as truncated (and, by construction of the chunked read,
        // never allocates the declared length).
        let mut bytes = format!("{MAX_FRAME_BYTES}\n").into_bytes();
        bytes.extend_from_slice(b"abc");
        let mut reader = BufReader::new(bytes.as_slice());
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn seeded_mutations_never_panic_the_parsers() {
        use velv_sat::rng::SmallRng;

        // Corpus of valid frames: every request shape plus typical responses.
        let mut corpus: Vec<Vec<u8>> = Vec::new();
        let bodies = [
            Request::Ping.to_body(),
            Request::Submit {
                spec: JobSpec::new(ModelRef::dlx1_bug(1)),
                trace: None,
            }
            .to_body(),
            Request::Submit {
                spec: JobSpec::new(ModelRef::dlx1_bug(1)),
                trace: Some(TraceContext {
                    trace_id: 0xF422,
                    parent_span: 9,
                }),
            }
            .to_body(),
            Request::Batch {
                specs: vec![
                    JobSpec::new(ModelRef::dlx1_correct()),
                    JobSpec::new(ModelRef::dlx1_bug(0)),
                ],
                trace: None,
            }
            .to_body(),
            Request::Stats(StatsFormat::Json).to_body(),
            Request::Flight.to_body(),
            Request::Proof(Fingerprint(0xabcdef)).to_body(),
            Request::Profile(Fingerprint(0xabcdef)).to_body(),
            "ok\nverdict correct\ncex-true a".to_owned(),
            "ok\nproof-bytes 4\n\n1 0\n".to_owned(),
            "ok\nprofile-bytes 4\n\n{}\n".to_owned(),
            "err boom".to_owned(),
            "busy queue full".to_owned(),
        ];
        for body in &bodies {
            let mut frame = Vec::new();
            write_frame(&mut frame, body).unwrap();
            corpus.push(frame);
        }

        let mut rng = SmallRng::seed_from_u64(0xF422_0007);
        for _round in 0..4000 {
            let mut bytes = corpus[rng.gen_range(0..corpus.len())].clone();
            // One to four random mutations: flip a byte, insert garbage,
            // delete a byte, or truncate the tail.
            for _ in 0..rng.gen_range(1..5) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.gen_range(0..bytes.len());
                match rng.gen_range(0..4) {
                    0 => bytes[at] = rng.next_u64() as u8,
                    1 => bytes.insert(at, rng.next_u64() as u8),
                    2 => {
                        bytes.remove(at);
                    }
                    _ => bytes.truncate(at),
                }
            }
            // The parsers must reject or accept cleanly — no panic, no
            // unbounded allocation, regardless of what the bytes became.
            let mut reader = BufReader::new(bytes.as_slice());
            for _frame in 0..4 {
                match read_frame(&mut reader) {
                    Ok(Some(body)) => {
                        let _ = Request::parse_body(&body);
                        let _ = Response::parse_body(&body);
                    }
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn mem_responses_carry_scopes_and_measured_rows() {
        let snapshot = velv_obs::mem::snapshot();
        let body = mem_response(&snapshot, 2, Some(1 << 20), &[("serve.cache", 4096)]);
        let response = Response::parse_body(&body).unwrap();
        assert!(response.field("live-bytes").is_some());
        assert_eq!(response.field("pressure-level"), Some("2"));
        assert_eq!(response.field("mem-limit-bytes"), Some("1048576"));
        assert_eq!(
            response.all("scope").len(),
            velv_obs::mem::SCOPE_NAMES.len(),
            "one scope line per registered scope"
        );
        assert_eq!(response.all("measured"), vec!["serve.cache 4096"]);
        // Without a limit the field reads zero rather than vanishing.
        let unlimited = mem_response(&snapshot, 0, None, &[]);
        let response = Response::parse_body(&unlimited).unwrap();
        assert_eq!(response.field("mem-limit-bytes"), Some("0"));
    }

    #[test]
    fn responses_parse_fields_and_payload() {
        let response = Response::parse_body("ok\nverdict correct\ncex-true a\ncex-true b").unwrap();
        assert_eq!(response.field("verdict"), Some("correct"));
        assert_eq!(response.all("cex-true"), vec!["a", "b"]);
        assert_eq!(response.payload, None);

        let with_payload = Response::parse_body("ok\nproof-bytes 4\n\n1 0\n").unwrap();
        assert_eq!(with_payload.payload.as_deref(), Some("1 0\n"));

        assert_eq!(Response::parse_body("err boom"), Err("boom".to_owned()));
        assert_eq!(
            Response::parse_body("busy queue full"),
            Err("busy: queue full".to_owned())
        );
    }
}
