//! `velv_serve` — the serving layer of the verification stack: a concurrent
//! verification service with a fingerprint-keyed verdict cache and batch
//! scheduling.
//!
//! The paper's workload is batch-and-repeat: the same processor model is
//! verified over and over across a bug catalog, encoding variants and solver
//! back ends.  Because the Bryant–German–Velev reduction makes the verdict a
//! pure function of the term-level model plus options, verdicts are cacheable
//! by *structural identity* — and because per-encoding costs differ wildly,
//! scheduling and deduplicating that traffic centrally pays for itself.  This
//! crate is the layer that takes the traffic:
//!
//! * [`job`] — [`JobSpec`]/[`ModelRef`]: what to verify and how, with a
//!   stable one-line wire encoding;
//! * [`cache`] — [`VerdictCache`]: a sharded, byte-accounted LRU over decided
//!   verdicts, counterexamples and DRAT artifacts, keyed by the structural
//!   job fingerprint and consulted before any translation or solve;
//! * [`service`] — [`ServeHandle`]: the bounded worker pool with priority +
//!   deadline scheduling, in-flight deduplication (a second submission of a
//!   running fingerprint subscribes instead of re-solving), and batch
//!   submission through one shared [`velv_sat::IncrementalSolver`] session;
//! * [`proto`]/[`server`]/[`client`] — a hand-rolled length-prefixed text
//!   protocol over TCP, the `velvd` server binary and the `velvc` client;
//! * [`persist`] — the record encoding that lands every decided verdict in a
//!   crash-safe [`velv_store::Store`] before the response is delivered, and
//!   replays the log into the cache on boot, so a killed `velvd` restarts
//!   without re-solving anything it already answered.
//!
//! # Example
//!
//! ```no_run
//! use velv_serve::{JobSpec, ModelRef, ServeHandle, ServiceConfig};
//!
//! let service = ServeHandle::start(ServiceConfig::default().with_workers(4));
//! // A bug-catalog sweep as one batch: shared translation, one solver.
//! let specs: Vec<JobSpec> = (0..4).map(|i| JobSpec::new(ModelRef::dlx1_bug(i))).collect();
//! let tickets = service.submit_batch(specs).expect("accepted");
//! for ticket in &tickets {
//!     println!("{:?}", ticket.wait().verdict);
//! }
//! // Resubmitting is free: same fingerprints, served from the cache.
//! let again = service
//!     .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
//!     .expect("accepted")
//!     .wait();
//! assert!(again.from_cache);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod job;
pub mod persist;
pub mod proto;
pub mod server;
pub mod service;

pub use cache::{CacheStats, CachedVerdict, VerdictCache};
pub use client::{ClientConfig, ClientError, ServeClient, SubmitReply};
pub use job::{BackendChoice, DlxVariant, JobSpec, ModelRef, ParseJobError, SolveMode};
pub use proto::{StatsFormat, TraceContext};
pub use server::{serve, ServerControl};
pub use service::{
    priority_class, JobResult, JobStatus, JobTicket, ProgressRow, ServeError, ServeHandle,
    ServiceConfig, ServiceStats,
};
