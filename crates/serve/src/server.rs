//! The TCP front end: accepts connections, speaks the frame protocol of
//! [`crate::proto`], and drives a [`ServeHandle`].
//!
//! One thread per connection; a connection may pipeline any number of
//! request frames and receives one response frame per request, in order.
//! `shutdown` stops the accept loop, shuts the service down (cancelling
//! whatever is in flight), and joins every connection thread.

use crate::proto::{
    batch_response, flight_response, mem_response, read_frame, stats_response, submit_response,
    write_frame, Request,
};
use crate::service::{JobTicket, ServeError, ServeHandle};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop re-checks the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A running TCP server; dropping it (or calling [`ServerControl::stop`])
/// stops accepting, shuts the service down and joins every thread.
pub struct ServerControl {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handle: ServeHandle,
}

impl ServerControl {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `shutdown` request (or [`ServerControl::stop`]) has stopped
    /// the server.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops (via a `shutdown` request).
    pub fn wait(mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        self.handle.shutdown();
    }

    /// Stops the server: no new connections, service shut down, all threads
    /// joined.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        self.handle.shutdown();
    }
}

impl Drop for ServerControl {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        self.handle.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:7911"`, port 0 for an ephemeral port) and
/// serves `handle` on it.
///
/// # Errors
///
/// Fails when the address cannot be bound.
pub fn serve(handle: ServeHandle, addr: impl ToSocketAddrs) -> io::Result<ServerControl> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_handle = handle.clone();
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("velvd-accept".to_owned())
        .spawn(move || accept_loop(listener, accept_handle, accept_stop))
        .expect("spawning the accept thread succeeds");
    Ok(ServerControl {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        handle,
    })
}

fn accept_loop(listener: TcpListener, handle: ServeHandle, stop: Arc<AtomicBool>) {
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let handle = handle.clone();
                let stop = Arc::clone(&stop);
                let thread = std::thread::Builder::new()
                    .name("velvd-conn".to_owned())
                    .spawn(move || {
                        let _ = serve_connection(stream, &handle, &stop);
                    })
                    .expect("spawning a connection thread succeeds");
                connections
                    .lock()
                    .expect("connection registry lock")
                    .push(thread);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
        // Reap finished connection threads so long-lived servers do not
        // accumulate handles.
        let mut registry = connections.lock().expect("connection registry lock");
        registry.retain(|t| !t.is_finished());
    }
    // Shut the service down FIRST: connection threads may be blocked in
    // `ticket.wait()` on long solves, and it is the shutdown (cancelling
    // every in-flight token) that unblocks them — joining before cancelling
    // would wait out the solves.
    handle.shutdown();
    let threads: Vec<JoinHandle<()>> = connections
        .lock()
        .expect("connection registry lock")
        .drain(..)
        .collect();
    for thread in threads {
        let _ = thread.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    handle: &ServeHandle,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(body) = read_frame(&mut reader)? {
        if stop.load(Ordering::SeqCst) {
            write_frame(&mut writer, "err server is shutting down")?;
            break;
        }
        let response = match Request::parse_body(&body) {
            Err(message) => format!("err {message}"),
            Ok(request) => match dispatch(request, handle, stop) {
                Ok(response) => response,
                Err(message) => format!("err {message}"),
            },
        };
        write_frame(&mut writer, &response)?;
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}

fn dispatch(
    request: Request,
    handle: &ServeHandle,
    stop: &Arc<AtomicBool>,
) -> Result<String, String> {
    match request {
        Request::Ping => Ok("ok\npong 1".to_owned()),
        Request::Stats(format) => Ok(stats_response(&handle.registry_snapshot(), format)),
        Request::Status => {
            let stats = handle.stats();
            let mut body = format!(
                "ok\nworkers {}\nqueued {}\nrunning {}\nshut-down {}",
                handle.workers(),
                stats.queued,
                stats.running,
                u8::from(handle.is_shut_down()),
            );
            for row in handle.progress_rows() {
                let progress = &row.progress;
                body.push_str(&format!(
                    "\njob {} name={} class={} elapsed-ms={} budget-ms={} conflicts={} \
                     conflicts-per-sec={} restarts={} trail={} level={} learnts={} beats={}",
                    row.fingerprint,
                    row.name.replace(' ', "_"),
                    row.class,
                    row.elapsed.as_millis(),
                    row.budget
                        .map(|b| b.as_millis().to_string())
                        .unwrap_or_else(|| "-".to_owned()),
                    progress.conflicts,
                    progress.conflicts_per_sec,
                    progress.restarts,
                    progress.trail_depth,
                    progress.decision_level,
                    progress.learnt_db,
                    progress.heartbeats,
                ));
            }
            Ok(body)
        }
        Request::Flight => Ok(flight_response(&velv_obs::flight::snapshot())),
        Request::Mem => Ok(mem_response(
            &velv_obs::mem::snapshot(),
            handle.mem_pressure_level(),
            handle.mem_limit(),
            &handle.measured_footprints(),
        )),
        Request::Submit { spec, trace } => {
            // Overload is a first-class `busy` status (not `err`): clients
            // back off and retry instead of treating it as a failure.
            let ticket = match handle.submit_traced(spec, trace) {
                Ok(ticket) => ticket,
                Err(ServeError::Busy(reason)) => return Ok(format!("busy {reason}")),
                Err(e) => return Err(e.to_string()),
            };
            let fingerprint = ticket.fingerprint();
            let result = ticket.wait();
            Ok(submit_response(fingerprint, &result))
        }
        Request::Batch { specs, trace } => {
            // The per-client quota caps how many jobs one connection puts in
            // flight at once; a batch is the only way a single (serial)
            // connection creates concurrent jobs.
            let quota = handle.per_client_quota();
            if quota > 0 && specs.len() > quota {
                handle.note_quota_rejection();
                return Ok(format!(
                    "busy per-client quota is {quota} jobs in flight, batch has {}",
                    specs.len()
                ));
            }
            let tickets: Vec<JobTicket> = match handle.submit_batch_traced(specs, trace) {
                Ok(tickets) => tickets,
                Err(ServeError::Busy(reason)) => return Ok(format!("busy {reason}")),
                Err(e) => return Err(e.to_string()),
            };
            let results: Vec<_> = tickets
                .iter()
                .map(|t| (t.fingerprint(), t.wait()))
                .collect();
            Ok(batch_response(&results))
        }
        Request::Proof(fingerprint) => {
            let entry = handle
                .cached(fingerprint)
                .ok_or_else(|| format!("no cached entry for {fingerprint}"))?;
            let proof = entry
                .proof_drat
                .as_ref()
                .ok_or_else(|| format!("no proof artifact stored for {fingerprint}"))?;
            let text = String::from_utf8_lossy(proof);
            Ok(format!("ok\nproof-bytes {}\n\n{}", proof.len(), text))
        }
        Request::Profile(fingerprint) => {
            let entry = handle
                .cached(fingerprint)
                .ok_or_else(|| format!("no cached entry for {fingerprint}"))?;
            let profile = entry
                .profile
                .as_ref()
                .ok_or_else(|| format!("no profile recorded for {fingerprint}"))?;
            Ok(format!(
                "ok\nprofile-bytes {}\n\n{}",
                profile.len(),
                profile
            ))
        }
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            Ok("ok\nbye 1".to_owned())
        }
    }
}
