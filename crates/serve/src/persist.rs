//! Serialization of cached verdicts for the crash-safe verdict store.
//!
//! The service persists every *decided* verdict (correct/buggy — never
//! unknown) into a [`velv_store::Store`] keyed by the job's 128-bit problem
//! fingerprint.  This module defines the record encoding:
//!
//! * the **payload** is a small, versioned, line-oriented text block carrying
//!   the verdict, the counterexample assignment (buggy verdicts), the
//!   certificate evidence, the solve time and the translation statistics;
//! * the **sidecar** is the raw DRAT proof artifact, when one was kept —
//!   large and optional, it is spilled by the store into a per-record sidecar
//!   file, and a missing sidecar degrades the recovered entry to "no proof"
//!   instead of losing the verdict.
//!
//! The encoding round-trips exactly: `decode(encode(v)) == v` up to the
//! `Arc` wrappers.  Records that fail to decode (a future format version, a
//! truncated line) are skipped by the warm-boot replay, never trusted.

use crate::cache::CachedVerdict;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use velv_core::{
    Certificate, Counterexample, ModelCertificate, ProofCertificate, TranslationStats, Verdict,
};

/// Version tag of the payload encoding; bumped on any incompatible change so
/// recovery can refuse records written by a future build.
const MAGIC: &str = "velv-verdict 1";

/// Percent-escapes the characters that would break the line encoding.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`esc`]; invalid escapes pass through verbatim.
fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '%' {
            let pair: String = chars.clone().take(2).collect();
            match pair.as_str() {
                "25" => {
                    out.push('%');
                    chars.next();
                    chars.next();
                }
                "0A" => {
                    out.push('\n');
                    chars.next();
                    chars.next();
                }
                "0D" => {
                    out.push('\r');
                    chars.next();
                    chars.next();
                }
                _ => out.push('%'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn opt_usize(value: Option<usize>) -> String {
    value.map_or_else(|| "-".to_owned(), |v| v.to_string())
}

fn parse_opt_usize(token: &str) -> Result<Option<usize>, String> {
    if token == "-" {
        return Ok(None);
    }
    token
        .parse()
        .map(Some)
        .map_err(|_| format!("bad optional count `{token}`"))
}

fn parse_u64(token: &str) -> Result<u64, String> {
    token.parse().map_err(|_| format!("bad number `{token}`"))
}

fn parse_usize(token: &str) -> Result<usize, String> {
    token.parse().map_err(|_| format!("bad count `{token}`"))
}

/// Encodes a cached verdict into a store record: `(payload, sidecar)`.
///
/// The sidecar is the DRAT proof bytes when the entry kept one.
pub fn encode(entry: &CachedVerdict) -> (Vec<u8>, Option<Vec<u8>>) {
    let mut body = String::from(MAGIC);
    match &entry.verdict {
        Verdict::Correct => body.push_str("\nverdict correct"),
        Verdict::Unknown(reason) => {
            body.push_str("\nverdict unknown\nreason ");
            body.push_str(&esc(reason));
        }
        Verdict::Buggy(cex) => {
            body.push_str("\nverdict buggy");
            for (name, value) in cex.iter() {
                body.push_str(&format!("\nassign {} {}", u8::from(value), esc(name)));
            }
        }
    }
    body.push_str(&format!("\nsolve-us {}", entry.solve_time.as_micros()));
    if let Some(s) = &entry.translation_stats {
        body.push_str(&format!(
            "\nstats {} {} {} {} {} {} {} {} {}",
            s.primary_bool_vars,
            s.eij_vars,
            s.indexing_vars,
            s.g_pairs,
            s.transitivity_triangles,
            s.cnf_vars,
            s.cnf_clauses,
            s.eufm_equations,
            s.uf_applications,
        ));
    }
    match &entry.certificate {
        None => {}
        Some(Certificate::Unchecked(reason)) => {
            body.push_str("\ncert unchecked ");
            body.push_str(&esc(reason));
        }
        Some(Certificate::Unsat(p)) => {
            body.push_str(&format!(
                "\ncert unsat {} {} {} {} {} {} {}",
                p.proof_steps,
                p.checked_clauses,
                p.refinement_clauses,
                p.terminal_step,
                opt_usize(p.input_core_size),
                opt_usize(p.trimmed_steps),
                p.check_time.as_micros(),
            ));
        }
        Some(Certificate::Sat(m)) => {
            body.push_str(&format!(
                "\ncert sat {} {} {} {}",
                m.checked_clauses,
                m.primary_assignments,
                m.equality_classes,
                m.check_time.as_micros(),
            ));
        }
    }
    if let Some(profile) = &entry.profile {
        body.push_str("\nprofile ");
        body.push_str(&esc(profile));
    }
    let sidecar = entry.proof_drat.as_ref().map(|p| p.as_ref().clone());
    (body.into_bytes(), sidecar)
}

/// Decodes a store record back into a cached verdict.
///
/// # Errors
///
/// Returns a description of the first malformed line; the warm-boot replay
/// skips such records (counting them) instead of aborting recovery.
pub fn decode(payload: &[u8], sidecar: Option<Vec<u8>>) -> Result<CachedVerdict, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_owned())?;
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(format!("unknown record version (expected `{MAGIC}`)"));
    }

    let mut verdict: Option<Verdict> = None;
    let mut assignments: BTreeMap<String, bool> = BTreeMap::new();
    let mut reason: Option<String> = None;
    let mut solve_time = Duration::ZERO;
    let mut translation_stats: Option<TranslationStats> = None;
    let mut certificate: Option<Certificate> = None;
    let mut profile: Option<Arc<String>> = None;

    for line in lines {
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "verdict" => {
                verdict = Some(match rest {
                    "correct" => Verdict::Correct,
                    "buggy" => Verdict::Buggy(Counterexample::default()),
                    "unknown" => Verdict::Unknown(String::new()),
                    other => return Err(format!("unknown verdict `{other}`")),
                });
            }
            "reason" => reason = Some(unesc(rest)),
            "assign" => {
                let (bit, name) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("bad assign line `{rest}`"))?;
                let value = match bit {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad assignment bit `{other}`")),
                };
                assignments.insert(unesc(name), value);
            }
            "solve-us" => solve_time = Duration::from_micros(parse_u64(rest)?),
            "stats" => {
                let parts: Vec<&str> = rest.split(' ').collect();
                if parts.len() != 9 {
                    return Err(format!("stats line needs 9 fields, got {}", parts.len()));
                }
                translation_stats = Some(TranslationStats {
                    primary_bool_vars: parse_usize(parts[0])?,
                    eij_vars: parse_usize(parts[1])?,
                    indexing_vars: parse_usize(parts[2])?,
                    g_pairs: parse_usize(parts[3])?,
                    transitivity_triangles: parse_usize(parts[4])?,
                    cnf_vars: parse_usize(parts[5])?,
                    cnf_clauses: parse_usize(parts[6])?,
                    eufm_equations: parse_usize(parts[7])?,
                    uf_applications: parse_usize(parts[8])?,
                });
            }
            "cert" => {
                let (kind, args) = rest.split_once(' ').unwrap_or((rest, ""));
                certificate = Some(match kind {
                    "unchecked" => Certificate::Unchecked(unesc(args)),
                    "unsat" => {
                        let p: Vec<&str> = args.split(' ').collect();
                        if p.len() != 7 {
                            return Err("cert unsat needs 7 fields".to_owned());
                        }
                        Certificate::Unsat(ProofCertificate {
                            proof_steps: parse_usize(p[0])?,
                            checked_clauses: parse_usize(p[1])?,
                            refinement_clauses: parse_usize(p[2])?,
                            terminal_step: parse_usize(p[3])?,
                            input_core_size: parse_opt_usize(p[4])?,
                            trimmed_steps: parse_opt_usize(p[5])?,
                            check_time: Duration::from_micros(parse_u64(p[6])?),
                        })
                    }
                    "sat" => {
                        let p: Vec<&str> = args.split(' ').collect();
                        if p.len() != 4 {
                            return Err("cert sat needs 4 fields".to_owned());
                        }
                        Certificate::Sat(ModelCertificate {
                            checked_clauses: parse_usize(p[0])?,
                            primary_assignments: parse_usize(p[1])?,
                            equality_classes: parse_usize(p[2])?,
                            check_time: Duration::from_micros(parse_u64(p[3])?),
                        })
                    }
                    other => return Err(format!("unknown certificate kind `{other}`")),
                });
            }
            "profile" => profile = Some(Arc::new(unesc(rest))),
            // Forward-compatible: unknown keys within a known version are
            // ignored so a patch release can add fields without a bump.
            _ => {}
        }
    }

    let verdict = match verdict.ok_or("record has no verdict line")? {
        Verdict::Correct => Verdict::Correct,
        Verdict::Unknown(_) => Verdict::Unknown(reason.unwrap_or_default()),
        Verdict::Buggy(_) => Verdict::Buggy(Counterexample::from_assignments(assignments)),
    };
    Ok(CachedVerdict {
        verdict,
        certificate,
        proof_drat: sidecar.map(Arc::new),
        solve_time,
        translation_stats,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(entry: CachedVerdict) -> CachedVerdict {
        let (payload, sidecar) = encode(&entry);
        decode(&payload, sidecar).expect("decode")
    }

    #[test]
    fn correct_verdict_roundtrips() {
        let entry = CachedVerdict {
            verdict: Verdict::Correct,
            certificate: Some(Certificate::Unchecked("not requested".to_owned())),
            proof_drat: Some(Arc::new(b"1 2 0\n0\n".to_vec())),
            solve_time: Duration::from_micros(12345),
            translation_stats: Some(TranslationStats {
                primary_bool_vars: 10,
                eij_vars: 3,
                indexing_vars: 2,
                g_pairs: 4,
                transitivity_triangles: 1,
                cnf_vars: 50,
                cnf_clauses: 120,
                eufm_equations: 9,
                uf_applications: 7,
            }),
            profile: None,
        };
        let back = roundtrip(entry.clone());
        assert_eq!(back.verdict, entry.verdict);
        assert_eq!(back.proof_drat.as_deref(), entry.proof_drat.as_deref());
        assert_eq!(back.solve_time, entry.solve_time);
        let (a, b) = (
            back.translation_stats.unwrap(),
            entry.translation_stats.unwrap(),
        );
        assert_eq!(a.cnf_clauses, b.cnf_clauses);
        assert_eq!(a.uf_applications, b.uf_applications);
        assert!(
            matches!(back.certificate, Some(Certificate::Unchecked(r)) if r == "not requested")
        );
    }

    #[test]
    fn buggy_verdict_keeps_every_assignment() {
        let mut assignments = BTreeMap::new();
        assignments.insert("e!rs1=rd".to_owned(), true);
        assignments.insert("squash taken".to_owned(), false);
        assignments.insert("weird%name\nwith newline".to_owned(), true);
        let entry = CachedVerdict {
            verdict: Verdict::Buggy(Counterexample::from_assignments(assignments.clone())),
            certificate: Some(Certificate::Sat(ModelCertificate {
                checked_clauses: 5,
                primary_assignments: 3,
                equality_classes: 2,
                check_time: Duration::from_micros(7),
            })),
            proof_drat: None,
            solve_time: Duration::ZERO,
            translation_stats: None,
            profile: None,
        };
        let back = roundtrip(entry);
        match back.verdict {
            Verdict::Buggy(cex) => {
                assert_eq!(cex.len(), 3);
                for (name, value) in &assignments {
                    assert_eq!(cex.value(name), Some(*value), "{name}");
                }
            }
            other => panic!("expected buggy, got {other:?}"),
        }
    }

    #[test]
    fn unsat_certificate_roundtrips_with_optional_fields() {
        for (core, trimmed) in [(None, None), (Some(17), Some(4))] {
            let entry = CachedVerdict {
                verdict: Verdict::Correct,
                certificate: Some(Certificate::Unsat(ProofCertificate {
                    proof_steps: 100,
                    checked_clauses: 200,
                    refinement_clauses: 8,
                    terminal_step: 99,
                    input_core_size: core,
                    trimmed_steps: trimmed,
                    check_time: Duration::from_micros(55),
                })),
                proof_drat: None,
                solve_time: Duration::from_micros(1),
                translation_stats: None,
                profile: None,
            };
            match roundtrip(entry).certificate {
                Some(Certificate::Unsat(p)) => {
                    assert_eq!(p.input_core_size, core);
                    assert_eq!(p.trimmed_steps, trimmed);
                    assert_eq!(p.proof_steps, 100);
                }
                other => panic!("expected unsat cert, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_records_are_rejected_not_panicked() {
        assert!(decode(b"", None).is_err());
        assert!(decode(b"velv-verdict 2\nverdict correct", None).is_err());
        assert!(decode(b"velv-verdict 1", None).is_err()); // no verdict
        assert!(decode(b"velv-verdict 1\nverdict sideways", None).is_err());
        assert!(decode(b"velv-verdict 1\nverdict buggy\nassign 2 x", None).is_err());
        assert!(decode(b"velv-verdict 1\nverdict correct\nstats 1 2", None).is_err());
        assert!(decode(b"velv-verdict 1\nverdict correct\ncert unsat 1 2", None).is_err());
        assert!(decode(&[0xFF, 0xFE], None).is_err());
        // Unknown keys in a known version are ignored (forward compat).
        assert!(decode(b"velv-verdict 1\nverdict correct\nfuture-key 1", None).is_ok());
    }

    #[test]
    fn profile_artifact_roundtrips() {
        // A representative SolveProfile serialization: JSONL with quotes and
        // newlines, exactly what the `%`-escaping must carry intact.
        let jsonl = velv_obs::SolveProfile {
            instance: "2xDLX-CC 100%".to_owned(),
            solver: "chaff".to_owned(),
            result: "unsat".to_owned(),
            wall_us: 42,
            stride: 1,
            offered: 1,
            ..velv_obs::SolveProfile::default()
        }
        .to_jsonl();
        let entry = CachedVerdict {
            verdict: Verdict::Correct,
            certificate: None,
            proof_drat: None,
            solve_time: Duration::from_micros(42),
            translation_stats: None,
            profile: Some(Arc::new(jsonl.clone())),
        };
        let back = roundtrip(entry);
        let stored = back.profile.expect("profile survives the store");
        assert_eq!(*stored, jsonl);
        velv_obs::SolveProfile::parse(&stored).expect("stored profile stays parseable");
    }

    #[test]
    fn missing_sidecar_degrades_to_no_proof() {
        let entry = CachedVerdict {
            verdict: Verdict::Correct,
            certificate: None,
            proof_drat: Some(Arc::new(b"proof".to_vec())),
            solve_time: Duration::ZERO,
            translation_stats: None,
            profile: None,
        };
        let (payload, _sidecar) = encode(&entry);
        let back = decode(&payload, None).unwrap();
        assert!(back.proof_drat.is_none());
        assert!(back.verdict.is_correct());
    }
}
