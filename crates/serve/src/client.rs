//! A minimal TCP client for the `velvd` protocol (used by `velvc` and the
//! integration tests), with per-request timeouts and reconnect-and-resubmit
//! retries.
//!
//! Retrying a submission is safe by construction: jobs are keyed by their
//! structural fingerprint, so a resubmission after a timeout either hits the
//! verdict cache (the first attempt finished server-side) or joins the still
//! in-flight twin — it never schedules duplicate solver work.  Backoff
//! between attempts uses decorrelated jitter so a fleet of retrying clients
//! does not stampede a recovering server in lockstep.

use crate::job::JobSpec;
use crate::proto::{read_frame, write_frame, Request, Response, StatsFormat, TraceContext};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use velv_sat::rng::SmallRng;

/// Client-side resilience knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-request read/write timeout; `None` waits indefinitely (solves can
    /// legitimately take long — prefer a generous value over none).
    pub timeout: Option<Duration>,
    /// Additional attempts after the first on busy/timeout/transport
    /// failures (0 = fail fast).
    pub retries: u32,
    /// Base backoff between attempts.
    pub backoff: Duration,
    /// Upper bound of the jittered backoff.
    pub backoff_cap: Duration,
    /// Seed of the backoff jitter (deterministic for tests).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: None,
            retries: 0,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            seed: 0x5EED_C11E,
        }
    }
}

/// A connected client.  One request/response exchange at a time.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: SocketAddr,
    config: ClientConfig,
    rng: SmallRng,
}

/// A client-side failure, classified so callers can react differently to
/// overload, slowness, dead servers and wire corruption.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connection refused/reset, ...).
    Io(io::Error),
    /// The request did not complete within the configured timeout.
    Timeout,
    /// The server rejected the request as overloaded; retry later.
    Busy(String),
    /// The server answered `err <message>`.
    Server(String),
    /// The response violated the wire protocol (malformed frame or status).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::Busy(reason) => write!(f, "server busy: {reason}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        classify_io(e)
    }
}

/// Sorts a transport error into the retry taxonomy: timeouts and protocol
/// violations are their own kinds, everything else stays a transport error.
fn classify_io(e: io::Error) -> ClientError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout,
        io::ErrorKind::InvalidData => ClientError::Protocol(e.to_string()),
        _ => ClientError::Io(e),
    }
}

/// The parsed outcome of a `submit` exchange.
#[derive(Clone, Debug)]
pub struct SubmitReply {
    /// Design name.
    pub name: String,
    /// The job fingerprint (hex), usable with [`ServeClient::proof`].
    pub fingerprint: String,
    /// `correct`, `buggy` or `unknown`.
    pub verdict: String,
    /// The reason of an `unknown` verdict.
    pub reason: Option<String>,
    /// Served from the verdict cache.
    pub cached: bool,
    /// Subscribed to an identical in-flight job.
    pub deduplicated: bool,
    /// Submission-to-result latency reported by the server.
    pub wall: Duration,
    /// Translation+solve time reported by the server.
    pub solve_time: Duration,
    /// True primary variables of the counterexample (buggy verdicts).
    pub cex_true: Vec<String>,
}

impl ServeClient {
    /// Connects to a `velvd` server with default resilience settings (no
    /// timeout, no retries).
    ///
    /// # Errors
    ///
    /// Fails when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeout/retry configuration.
    ///
    /// # Errors
    ///
    /// Fails when the connection cannot be established.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        Self::configure(&stream, &config)?;
        let rng = SmallRng::seed_from_u64(config.seed);
        Ok(ServeClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            peer,
            config,
            rng,
        })
    }

    fn configure(stream: &TcpStream, config: &ClientConfig) -> io::Result<()> {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(config.timeout)?;
        stream.set_write_timeout(config.timeout)?;
        Ok(())
    }

    /// Tears the connection down and dials the same peer again.  Required
    /// after a timeout: the old stream may still carry the late response,
    /// which would desynchronize every later exchange.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.peer)?;
        Self::configure(&stream, &self.config)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        Ok(())
    }

    /// One wire exchange, no retries.
    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &request.to_body()).map_err(classify_io)?;
        let body = read_frame(&mut self.reader)
            .map_err(classify_io)?
            .ok_or_else(|| {
                ClientError::Protocol("connection closed before a response arrived".to_owned())
            })?;
        if let Some(reason) = body.strip_prefix("busy ") {
            return Err(ClientError::Busy(
                reason.lines().next().unwrap_or("").to_owned(),
            ));
        }
        Response::parse_body(&body).map_err(|message| {
            if body.starts_with("err ") {
                ClientError::Server(message)
            } else {
                ClientError::Protocol(message)
            }
        })
    }

    /// One request/response exchange, retried per the [`ClientConfig`]:
    /// busy, timeout and transport failures are retried with decorrelated
    /// jitter (reconnecting first unless the connection is known in-sync);
    /// server and protocol errors fail immediately.
    ///
    /// # Errors
    ///
    /// The classified failure of the last attempt.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        let mut previous = self.config.backoff;
        loop {
            let error = match self.exchange(request) {
                Ok(response) => return Ok(response),
                Err(e) => e,
            };
            let retryable = matches!(
                error,
                ClientError::Busy(_) | ClientError::Timeout | ClientError::Io(_)
            );
            if !retryable || attempt >= self.config.retries {
                return Err(error);
            }
            attempt += 1;
            // Decorrelated jitter: sleep ~ uniform(base, 3 * previous),
            // capped.  Spreads a retrying fleet out instead of thundering.
            let base = self.config.backoff.as_millis() as u64;
            let high = (previous.as_millis() as u64)
                .saturating_mul(3)
                .max(base + 1);
            let span = (high - base).min(u32::MAX as u64) as usize;
            let ms = base + self.rng.gen_range(0..span.max(1)) as u64;
            previous = Duration::from_millis(ms).min(self.config.backoff_cap);
            std::thread::sleep(previous);
            if !matches!(error, ClientError::Busy(_)) {
                // Best effort; a failed redial surfaces as Io on the next
                // attempt and consumes the remaining budget.
                let _ = self.reconnect();
            }
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Submits one job and waits for its verdict.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn submit(&mut self, spec: JobSpec) -> Result<SubmitReply, ClientError> {
        self.submit_traced(spec, None)
    }

    /// Submits one job with the client's trace context attached, so the
    /// server parents its `serve.job` span under the client's root span in a
    /// merged multi-process trace.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn submit_traced(
        &mut self,
        spec: JobSpec,
        trace: Option<TraceContext>,
    ) -> Result<SubmitReply, ClientError> {
        let response = self.request(&Request::Submit { spec, trace })?;
        let micros = |key: &str| {
            response
                .field(key)
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_micros)
                .unwrap_or(Duration::ZERO)
        };
        Ok(SubmitReply {
            name: response.field("name").unwrap_or("?").to_owned(),
            fingerprint: response.field("fingerprint").unwrap_or("").to_owned(),
            verdict: response.field("verdict").unwrap_or("unknown").to_owned(),
            reason: response.field("reason").map(str::to_owned),
            cached: response.field("cached") == Some("1"),
            deduplicated: response.field("dedup") == Some("1"),
            wall: micros("wall-us"),
            solve_time: micros("solve-us"),
            cex_true: response
                .all("cex-true")
                .iter()
                .map(|s| s.to_string())
                .collect(),
        })
    }

    /// Submits a batch; returns the raw per-job lines of the response.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn batch(&mut self, specs: Vec<JobSpec>) -> Result<Response, ClientError> {
        self.batch_traced(specs, None)
    }

    /// Submits a batch with the client's trace context attached (see
    /// [`ServeClient::submit_traced`]).
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn batch_traced(
        &mut self,
        specs: Vec<JobSpec>,
        trace: Option<TraceContext>,
    ) -> Result<Response, ClientError> {
        self.request(&Request::Batch { specs, trace })
    }

    /// Fetches the scheduler gauges plus the live per-job progress rows
    /// (one `job` field per in-flight job).
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn status(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Status)
    }

    /// Snapshots the server's flight-recorder ring: the most recent trace
    /// records as JSONL lines, oldest first.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`]; also fails when the server omits the
    /// payload of a non-empty snapshot.
    pub fn flight(&mut self) -> Result<Vec<String>, ClientError> {
        let response = self.request(&Request::Flight)?;
        Ok(response
            .payload
            .map(|payload| payload.lines().map(str::to_owned).collect())
            .unwrap_or_default())
    }

    /// Fetches the server's memory snapshot: the raw `key value` and
    /// repeated `scope`/`measured` lines of the `mem` wire verb (see
    /// [`crate::proto::mem_response`] for the field set).
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn mem(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Mem)
    }

    /// Fetches the service metric registry as flat `(key, value)` pairs.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        let response = self.request(&Request::Stats(StatsFormat::Flat))?;
        Ok(response
            .fields
            .iter()
            .filter_map(|(k, v)| v.parse::<u64>().ok().map(|v| (k.clone(), v)))
            .collect())
    }

    /// Fetches the service metric registry in an encoded text form
    /// (Prometheus exposition text or JSON).
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`]; also fails when the server omits the
    /// encoded payload.
    pub fn stats_text(&mut self, format: StatsFormat) -> Result<String, ClientError> {
        let response = self.request(&Request::Stats(format))?;
        response
            .payload
            .ok_or_else(|| ClientError::Protocol("stats response had no payload".to_owned()))
    }

    /// Fetches the cached DRAT proof text for a fingerprint.
    ///
    /// # Errors
    ///
    /// Fails when nothing (or no proof) is cached under the fingerprint.
    pub fn proof(&mut self, fingerprint_hex: &str) -> Result<String, ClientError> {
        let fingerprint = velv_eufm::Fingerprint::from_hex(fingerprint_hex)
            .ok_or_else(|| ClientError::Server(format!("bad fingerprint `{fingerprint_hex}`")))?;
        let response = self.request(&Request::Proof(fingerprint))?;
        response
            .payload
            .ok_or_else(|| ClientError::Protocol("proof response had no payload".to_owned()))
    }

    /// Fetches the cached solve profile (JSONL) for a fingerprint.
    ///
    /// # Errors
    ///
    /// Fails when nothing (or no profile) is cached under the fingerprint.
    pub fn profile(&mut self, fingerprint_hex: &str) -> Result<String, ClientError> {
        let fingerprint = velv_eufm::Fingerprint::from_hex(fingerprint_hex)
            .ok_or_else(|| ClientError::Server(format!("bad fingerprint `{fingerprint_hex}`")))?;
        let response = self.request(&Request::Profile(fingerprint))?;
        response
            .payload
            .ok_or_else(|| ClientError::Protocol("profile response had no payload".to_owned()))
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}
