//! A minimal TCP client for the `velvd` protocol (used by `velvc` and the
//! integration tests).

use crate::job::JobSpec;
use crate::proto::{read_frame, write_frame, Request, Response, StatsFormat};
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client.  One request/response exchange at a time.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A client-side failure: transport error or a server `err` response.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server answered `err <message>`, or the response was malformed.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The parsed outcome of a `submit` exchange.
#[derive(Clone, Debug)]
pub struct SubmitReply {
    /// Design name.
    pub name: String,
    /// The job fingerprint (hex), usable with [`ServeClient::proof`].
    pub fingerprint: String,
    /// `correct`, `buggy` or `unknown`.
    pub verdict: String,
    /// The reason of an `unknown` verdict.
    pub reason: Option<String>,
    /// Served from the verdict cache.
    pub cached: bool,
    /// Subscribed to an identical in-flight job.
    pub deduplicated: bool,
    /// Submission-to-result latency reported by the server.
    pub wall: Duration,
    /// Translation+solve time reported by the server.
    pub solve_time: Duration,
    /// True primary variables of the counterexample (buggy verdicts).
    pub cex_true: Vec<String>,
}

impl ServeClient {
    /// Connects to a `velvd` server.
    ///
    /// # Errors
    ///
    /// Fails when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ServeClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One raw request/response exchange.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a closed connection, or an `err` response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &request.to_body())?;
        let body = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Server("connection closed before a response arrived".to_owned())
        })?;
        Response::parse_body(&body).map_err(ClientError::Server)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Submits one job and waits for its verdict.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn submit(&mut self, spec: JobSpec) -> Result<SubmitReply, ClientError> {
        let response = self.request(&Request::Submit(spec))?;
        let micros = |key: &str| {
            response
                .field(key)
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_micros)
                .unwrap_or(Duration::ZERO)
        };
        Ok(SubmitReply {
            name: response.field("name").unwrap_or("?").to_owned(),
            fingerprint: response.field("fingerprint").unwrap_or("").to_owned(),
            verdict: response.field("verdict").unwrap_or("unknown").to_owned(),
            reason: response.field("reason").map(str::to_owned),
            cached: response.field("cached") == Some("1"),
            deduplicated: response.field("dedup") == Some("1"),
            wall: micros("wall-us"),
            solve_time: micros("solve-us"),
            cex_true: response
                .all("cex-true")
                .iter()
                .map(|s| s.to_string())
                .collect(),
        })
    }

    /// Submits a batch; returns the raw per-job lines of the response.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn batch(&mut self, specs: Vec<JobSpec>) -> Result<Response, ClientError> {
        self.request(&Request::Batch(specs))
    }

    /// Fetches the service metric registry as flat `(key, value)` pairs.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        let response = self.request(&Request::Stats(StatsFormat::Flat))?;
        Ok(response
            .fields
            .iter()
            .filter_map(|(k, v)| v.parse::<u64>().ok().map(|v| (k.clone(), v)))
            .collect())
    }

    /// Fetches the service metric registry in an encoded text form
    /// (Prometheus exposition text or JSON).
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`]; also fails when the server omits the
    /// encoded payload.
    pub fn stats_text(&mut self, format: StatsFormat) -> Result<String, ClientError> {
        let response = self.request(&Request::Stats(format))?;
        response
            .payload
            .ok_or_else(|| ClientError::Server("stats response had no payload".to_owned()))
    }

    /// Fetches the cached DRAT proof text for a fingerprint.
    ///
    /// # Errors
    ///
    /// Fails when nothing (or no proof) is cached under the fingerprint.
    pub fn proof(&mut self, fingerprint_hex: &str) -> Result<String, ClientError> {
        let fingerprint = velv_eufm::Fingerprint::from_hex(fingerprint_hex)
            .ok_or_else(|| ClientError::Server(format!("bad fingerprint `{fingerprint_hex}`")))?;
        let response = self.request(&Request::Proof(fingerprint))?;
        response
            .payload
            .ok_or_else(|| ClientError::Server("proof response had no payload".to_owned()))
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}
