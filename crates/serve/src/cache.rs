//! The fingerprint-keyed verdict cache: a sharded LRU with byte-size
//! accounting.
//!
//! The service consults this cache *before* any translation or solve: the
//! paper's workload is batch-and-repeat (the same processor model verified
//! over and over across a bug catalog, encoding variants and back ends), so
//! most submitted work is structurally identical to work already done, and
//! the Bryant–German–Velev reduction makes the verdict a pure function of the
//! job fingerprint — a hit is simply the answer.
//!
//! Design:
//!
//! * **Sharding.**  Keys are spread over `N` independently locked shards by
//!   fingerprint bits, so concurrent submitters do not serialize on one lock.
//! * **Byte accounting.**  Each entry is charged its approximate heap size
//!   ([`CachedVerdict::approx_bytes`]) — counterexamples and DRAT artifacts
//!   dwarf the fixed-size verdict, so the budget is in bytes, not entries.
//! * **True LRU.**  Each shard keeps an intrusive doubly linked list over a
//!   slab of nodes; a hit relinks the entry to the front in O(1), and
//!   insertion evicts from the back until the shard fits its budget.

use std::collections::HashMap;
use std::mem::size_of;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use velv_core::{Certificate, TranslationStats, Verdict};
use velv_eufm::Fingerprint;
use velv_obs::{Counter, MemFootprint, Registry};

/// Heap cost of an `Arc<T>` control block (strong + weak counts), charged
/// once per `Arc` allocation an entry owns.
const ARC_HEADER: usize = 2 * size_of::<usize>();

/// Estimated per-entry share of a `BTreeMap<String, bool>` node (key header,
/// value, node-internal slack).
const BTREE_ENTRY: usize = 48;

/// Estimated cost of one occupied shard hash-map slot: key, node index and
/// control byte, rounded up for load-factor slack.
const MAP_SLOT: usize = size_of::<u128>() + size_of::<usize>() + 8;

/// Flat charge for a resident [`Certificate`]: the variant payloads are
/// fixed-size counters plus a short reason string.
const CERT_BYTES: usize = 128;

/// A cached, decided verdict and its artifacts.
///
/// Undecided (`Unknown`) verdicts are never cached — a timeout or
/// cancellation says nothing about the formula.
#[derive(Clone, Debug)]
pub struct CachedVerdict {
    /// The decided verdict (with its counterexample, for buggy designs).
    pub verdict: Verdict,
    /// The certificate of a certified run, if the job asked for one.
    pub certificate: Option<Certificate>,
    /// DRAT proof artifact of an UNSAT verdict (text format), if the job
    /// asked to keep it.
    pub proof_drat: Option<Arc<Vec<u8>>>,
    /// Wall-clock time of the original translation + solve.
    pub solve_time: Duration,
    /// Translation statistics of the original run.
    pub translation_stats: Option<TranslationStats>,
    /// The serialized [`velv_obs::SolveProfile`] (JSONL) of the original
    /// run, when the service was profiling — served by the `profile` wire
    /// verb.
    pub profile: Option<Arc<String>>,
}

impl CachedVerdict {
    /// Approximate heap footprint of a *resident* entry, used for the cache's
    /// byte accounting: the value struct, the `Arc` control block the shard
    /// wraps it in, the intrusive LRU node and hash-map slot pointing at it,
    /// plus every owned artifact with its own allocation header.  Kept within
    /// 2× of [`MemFootprint::measured_bytes`] (see the property test in
    /// `tests/cache_props.rs`); the difference is that the estimate charges
    /// lengths where the measure charges capacities.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = size_of::<CachedVerdict>() + ARC_HEADER + size_of::<Node>() + MAP_SLOT;
        bytes += self.artifact_bytes(false);
        bytes
    }

    /// Bytes of the owned, heap-allocated artifacts: counterexample entries,
    /// reason strings, proof and profile buffers.  `deep` charges buffer
    /// capacities (what the allocator really holds); otherwise lengths.
    fn artifact_bytes(&self, deep: bool) -> usize {
        let mut bytes = 0;
        match &self.verdict {
            Verdict::Buggy(cex) => {
                for (name, _) in cex.iter() {
                    bytes += name.len() + BTREE_ENTRY;
                }
            }
            Verdict::Unknown(reason) => {
                bytes += if deep {
                    reason.capacity()
                } else {
                    reason.len()
                };
            }
            Verdict::Correct => {}
        }
        if let Some(proof) = &self.proof_drat {
            bytes += ARC_HEADER + size_of::<Vec<u8>>();
            bytes += if deep { proof.capacity() } else { proof.len() };
        }
        if let Some(profile) = &self.profile {
            bytes += ARC_HEADER + size_of::<String>();
            bytes += if deep {
                profile.capacity()
            } else {
                profile.len()
            };
        }
        if self.certificate.is_some() {
            bytes += CERT_BYTES;
        }
        bytes
    }
}

impl MemFootprint for CachedVerdict {
    /// Deep heap bytes of the value itself (without the cache's node/slot
    /// overhead, which [`VerdictCache`]'s impl accounts structurally).
    fn measured_bytes(&self) -> usize {
        size_of::<CachedVerdict>() + self.artifact_bytes(true)
    }
}

/// Aggregate cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently charged.
    pub bytes: u64,
    /// Total byte budget across all shards.
    pub capacity_bytes: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Insertions (including replacements).
    pub insertions: u64,
    /// Entries evicted under byte pressure.
    pub evictions: u64,
    /// Entries refused because they alone exceed a shard's budget.
    pub oversize: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups (0 when none were made).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Node {
    key: u128,
    value: Arc<CachedVerdict>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One shard: hash map + intrusive LRU list over a slab with a free list.
struct Shard {
    map: HashMap<u128, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, index: usize) {
        let (prev, next) = (self.nodes[index].prev, self.nodes[index].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, index: usize) {
        self.nodes[index].prev = NIL;
        self.nodes[index].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = index;
        }
        self.head = index;
        if self.tail == NIL {
            self.tail = index;
        }
    }

    fn touch(&mut self, index: usize) {
        if self.head != index {
            self.unlink(index);
            self.push_front(index);
        }
    }

    /// Removes the LRU entry; returns false when the shard is empty.
    fn evict_one(&mut self) -> bool {
        let victim = self.tail;
        if victim == NIL {
            return false;
        }
        self.unlink(victim);
        let node = &mut self.nodes[victim];
        self.bytes -= node.bytes;
        let key = node.key;
        self.map.remove(&key);
        self.free.push(victim);
        true
    }

    fn insert(&mut self, key: u128, value: Arc<CachedVerdict>, bytes: usize) {
        if let Some(&index) = self.map.get(&key) {
            self.bytes -= self.nodes[index].bytes;
            self.bytes += bytes;
            self.nodes[index].value = value;
            self.nodes[index].bytes = bytes;
            self.touch(index);
            return;
        }
        let index = match self.free.pop() {
            Some(index) => {
                self.nodes[index] = Node {
                    key,
                    value,
                    bytes,
                    prev: NIL,
                    next: NIL,
                };
                index
            }
            None => {
                self.nodes.push(Node {
                    key,
                    value,
                    bytes,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, index);
        self.push_front(index);
        self.bytes += bytes;
    }
}

/// The sharded, byte-bounded LRU verdict cache (see the module docs).
pub struct VerdictCache {
    shards: Box<[Mutex<Shard>]>,
    /// Per-shard byte budget.  Atomic so the service's memory-pressure ladder
    /// can shrink and restore the budget on a live cache
    /// ([`VerdictCache::set_capacity`]).
    shard_capacity: AtomicUsize,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
    oversize: Counter,
}

impl VerdictCache {
    /// Creates a cache with a total byte budget split over `shards` locks.
    /// Both arguments are clamped to at least 1 (shard count additionally
    /// rounded up to a power of two for cheap masking).  The lookup counters
    /// live on a throwaway registry; use [`VerdictCache::with_registry`] to
    /// surface them.
    pub fn new(capacity_bytes: usize, shards: usize) -> Self {
        Self::with_registry(capacity_bytes, shards, &Registry::new())
    }

    /// [`VerdictCache::new`], with the lookup counters registered on
    /// `registry` (`velv_serve_cache_lookup_*_total`) so a registry snapshot
    /// carries the cache's traffic.
    pub fn with_registry(capacity_bytes: usize, shards: usize, registry: &Registry) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let shard_capacity = (capacity_bytes / shard_count).max(1);
        let shards: Vec<Mutex<Shard>> =
            (0..shard_count).map(|_| Mutex::new(Shard::new())).collect();
        VerdictCache {
            shards: shards.into_boxed_slice(),
            shard_capacity: AtomicUsize::new(shard_capacity),
            hits: registry.counter(
                "velv_serve_cache_lookup_hits_total",
                "Verdict-cache lookups that found an entry.",
            ),
            misses: registry.counter(
                "velv_serve_cache_lookup_misses_total",
                "Verdict-cache lookups that found nothing.",
            ),
            insertions: registry.counter(
                "velv_serve_cache_insertions_total",
                "Verdict-cache insertions (including replacements).",
            ),
            evictions: registry.counter(
                "velv_serve_cache_evictions_total",
                "Verdict-cache entries evicted under byte pressure.",
            ),
            oversize: registry.counter(
                "velv_serve_cache_oversize_total",
                "Verdict-cache entries refused for exceeding a shard budget.",
            ),
        }
    }

    fn shard(&self, key: Fingerprint) -> &Mutex<Shard> {
        // The fingerprint is already well mixed; fold the halves so shard
        // selection uses all 128 bits.
        let folded = (key.0 as u64) ^ ((key.0 >> 64) as u64);
        &self.shards[(folded as usize) & (self.shards.len() - 1)]
    }

    /// Looks a fingerprint up, refreshing its recency on a hit.
    pub fn get(&self, key: Fingerprint) -> Option<Arc<CachedVerdict>> {
        let _span = velv_obs::span("cache.lookup");
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        match shard.map.get(&key.0).copied() {
            Some(index) => {
                shard.touch(index);
                self.hits.inc();
                Some(Arc::clone(&shard.nodes[index].value))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting least-recently-used entries
    /// of the same shard until it fits.  An entry whose own footprint exceeds
    /// the shard budget is refused rather than flushing the whole shard.
    pub fn insert(&self, key: Fingerprint, value: CachedVerdict) {
        let bytes = value.approx_bytes();
        let shard_capacity = self.shard_capacity.load(Ordering::Relaxed);
        if bytes > shard_capacity {
            self.oversize.inc();
            return;
        }
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        shard.insert(key.0, Arc::new(value), bytes);
        self.insertions.inc();
        while shard.bytes > shard_capacity {
            if !shard.evict_one() {
                break;
            }
            self.evictions.inc();
        }
    }

    /// Re-budgets the cache to `capacity_bytes` total, immediately evicting
    /// LRU entries from every shard that now exceeds its share.  Growing the
    /// budget back later does not resurrect evicted entries — the service's
    /// memory-pressure ladder uses this to trade hit ratio for headroom and
    /// restore the configured budget once pressure clears.
    pub fn set_capacity(&self, capacity_bytes: usize) {
        let per_shard = (capacity_bytes / self.shards.len()).max(1);
        self.shard_capacity.store(per_shard, Ordering::Relaxed);
        for shard in self.shards.iter() {
            let mut shard = shard.lock().expect("cache shard lock");
            while shard.bytes > per_shard {
                if !shard.evict_one() {
                    break;
                }
                self.evictions.inc();
            }
        }
    }

    /// The current total byte budget across all shards.
    pub fn capacity_bytes(&self) -> usize {
        self.shard_capacity.load(Ordering::Relaxed) * self.shards.len()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("cache shard lock");
            entries += shard.map.len() as u64;
            bytes += shard.bytes as u64;
        }
        CacheStats {
            entries,
            bytes,
            capacity_bytes: self.capacity_bytes() as u64,
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            oversize: self.oversize.get(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl MemFootprint for VerdictCache {
    /// Deep measured bytes: shard map/slab/free-list capacities plus every
    /// resident value behind its `Arc`.  Always at least the accounted
    /// [`CacheStats::bytes`] figure, since the accounting charges occupied
    /// slots and buffer lengths where this walks reserved capacities.
    fn measured_bytes(&self) -> usize {
        let mut bytes = size_of::<VerdictCache>();
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("cache shard lock");
            bytes += size_of::<Mutex<Shard>>();
            bytes += shard.map.capacity() * MAP_SLOT;
            bytes += shard.nodes.capacity() * size_of::<Node>();
            bytes += shard.free.capacity() * size_of::<usize>();
            for &index in shard.map.values() {
                bytes += ARC_HEADER + shard.nodes[index].value.measured_bytes();
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict_of_bytes(padding: usize) -> CachedVerdict {
        CachedVerdict {
            verdict: Verdict::Correct,
            certificate: None,
            proof_drat: Some(Arc::new(vec![b'0'; padding])),
            solve_time: Duration::from_millis(1),
            translation_stats: None,
            profile: None,
        }
    }

    fn fp(i: u128) -> Fingerprint {
        // Spread the keys so single-shard tests use shards=1.
        Fingerprint(i)
    }

    #[test]
    fn hit_refreshes_recency() {
        // Budget exactly three entries, derived from the real accounting so
        // the test is immune to base-overhead changes.
        let unit = verdict_of_bytes(300).approx_bytes();
        let cache = VerdictCache::new(3 * unit, 1);
        cache.insert(fp(1), verdict_of_bytes(300));
        cache.insert(fp(2), verdict_of_bytes(300));
        cache.insert(fp(3), verdict_of_bytes(300));
        // Touch 1 so 2 is now the LRU; a fourth insert must evict 2.
        assert!(cache.get(fp(1)).is_some());
        cache.insert(fp(4), verdict_of_bytes(300));
        assert!(cache.get(fp(1)).is_some(), "recently used survives");
        assert!(cache.get(fp(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(fp(3)).is_some());
        assert!(cache.get(fp(4)).is_some());
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn byte_pressure_evicts_multiple_entries() {
        let small = verdict_of_bytes(200).approx_bytes();
        let cache = VerdictCache::new(5 * small, 1);
        for i in 0..4 {
            cache.insert(fp(i), verdict_of_bytes(200));
        }
        assert_eq!(cache.len(), 4);
        // One large entry displaces several small ones.
        cache.insert(fp(99), verdict_of_bytes(200 + 3 * small));
        let stats = cache.stats();
        assert!(stats.bytes <= stats.capacity_bytes);
        assert!(cache.get(fp(99)).is_some());
        assert!(cache.len() < 5);
    }

    #[test]
    fn oversize_entries_are_refused() {
        let cache = VerdictCache::new(1024, 1);
        cache.insert(fp(7), verdict_of_bytes(1 << 20));
        assert!(cache.get(fp(7)).is_none());
        assert_eq!(cache.stats().oversize, 1);
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn replacement_updates_byte_accounting() {
        let cache = VerdictCache::new(10_000, 1);
        cache.insert(fp(5), verdict_of_bytes(100));
        let before = cache.stats().bytes;
        cache.insert(fp(5), verdict_of_bytes(4000));
        let after = cache.stats().bytes;
        assert_eq!(cache.len(), 1);
        assert!(after > before);
        cache.insert(fp(5), verdict_of_bytes(100));
        assert_eq!(cache.stats().bytes, before);
    }

    #[test]
    fn set_capacity_evicts_down_then_restores_the_budget() {
        let unit = verdict_of_bytes(300).approx_bytes();
        let cache = VerdictCache::new(8 * unit, 1);
        for i in 0..6 {
            cache.insert(fp(i), verdict_of_bytes(300));
        }
        assert_eq!(cache.len(), 6);
        // Shrink to two entries' worth: four LRU entries must go at once.
        cache.set_capacity(2 * unit);
        let stats = cache.stats();
        assert_eq!(stats.capacity_bytes, 2 * unit as u64);
        assert!(stats.bytes <= stats.capacity_bytes);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(fp(4)).is_some(), "MRU entries survive the shrink");
        assert!(cache.get(fp(5)).is_some());
        assert!(cache.get(fp(0)).is_none(), "LRU entries are evicted");
        // Entries larger than the shrunken shard budget are refused...
        cache.insert(fp(50), verdict_of_bytes(300 + 2 * unit));
        assert_eq!(cache.stats().oversize, 1);
        // ...until the budget is restored.
        cache.set_capacity(8 * unit);
        assert_eq!(cache.capacity_bytes(), 8 * unit);
        cache.insert(fp(50), verdict_of_bytes(300 + 2 * unit));
        assert!(cache.get(fp(50)).is_some());
    }

    #[test]
    fn measured_footprint_covers_the_accounted_bytes() {
        let cache = VerdictCache::new(1 << 20, 4);
        for i in 0..32 {
            cache.insert(fp(i), verdict_of_bytes(100 + 37 * i as usize));
        }
        let stats = cache.stats();
        assert!(stats.bytes > 0);
        // The deep walk charges reserved capacities where the accounting
        // charges occupied lengths, so measured dominates accounted.
        assert!(
            cache.measured_bytes() as u64 >= stats.bytes,
            "measured {} fell below accounted {}",
            cache.measured_bytes(),
            stats.bytes
        );
    }

    #[test]
    fn stats_and_hit_ratio() {
        let cache = VerdictCache::new(1 << 20, 8);
        assert!(cache.is_empty());
        cache.insert(fp(1), verdict_of_bytes(10));
        assert!(cache.get(fp(1)).is_some());
        assert!(cache.get(fp(2)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(stats.entries, 1);
    }
}
