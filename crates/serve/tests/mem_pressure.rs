//! End-to-end memory-pressure test: a service populated through a verdict
//! store is restarted under an absurdly small `mem_limit`, and the staged
//! degradation must hold — warm cache hits keep being served, fresh
//! submissions are refused `busy`, and the pressure gauges/trip counters
//! record the episode.

use velv_core::Verdict;
use velv_serve::{JobSpec, ModelRef, ServeError, ServeHandle, ServiceConfig};

/// The pressure ladder only engages when the counting allocator is
/// installed — live bytes read 0 otherwise and every level computes to 0.
#[global_allocator]
static ALLOC: velv_obs::CountingAlloc = velv_obs::CountingAlloc;

#[test]
fn pressure_serves_cache_hits_but_refuses_fresh_work() {
    let base = std::env::temp_dir().join(format!("velv_mem_pressure_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Phase 1: decide a small catalog with a store attached, no limit.
    let config = || {
        let mut config = ServiceConfig::default().with_workers(2);
        config.store_dir = Some(base.clone());
        config
    };
    let service = ServeHandle::try_start(config()).expect("start with a store");
    for spec in [
        JobSpec::new(ModelRef::dlx1_correct()),
        JobSpec::new(ModelRef::dlx1_bug(0)),
    ] {
        let result = service.submit(spec).expect("accepted").wait();
        assert!(
            !matches!(result.verdict, Verdict::Unknown(_)),
            "{} came back undecided",
            result.name
        );
    }
    service.shutdown();
    drop(service);

    // Phase 2: restart on the same store with a 1-byte limit — the process
    // heap is always past 95% of it, so the service sits at stage 3.
    let service = ServeHandle::try_start(config().with_mem_limit(1)).expect("warm restart");
    assert_eq!(
        service.mem_pressure_level(),
        3,
        "a 1-byte limit pins the ladder at stage 3"
    );
    assert_eq!(service.mem_limit(), Some(1));

    // Warm repeats are replayed from the store into the cache and must be
    // served even at stage 3.
    for spec in [
        JobSpec::new(ModelRef::dlx1_correct()),
        JobSpec::new(ModelRef::dlx1_bug(0)),
    ] {
        let result = service.submit(spec).expect("cache hits bypass refusal");
        let result = result.wait();
        assert!(result.from_cache, "{} must come from cache", result.name);
    }

    // A fingerprint the store has never seen is fresh work: refused busy.
    match service.submit(JobSpec::new(ModelRef::dlx1_bug(1))) {
        Err(ServeError::Busy(reason)) => {
            assert!(
                reason.contains("memory"),
                "busy reason names the cause: {reason}"
            )
        }
        Err(other) => panic!("fresh work at stage 3 must be refused busy, got {other}"),
        Ok(_) => panic!("fresh work at stage 3 must be refused busy, got a ticket"),
    }

    // The episode is visible in the registry: the level gauge sits at 3,
    // the trip counter recorded the 0 -> 3 transition, and at least one
    // refusal was counted.
    let fields: std::collections::HashMap<String, String> = service
        .registry_snapshot()
        .flat_fields()
        .into_iter()
        .collect();
    assert_eq!(
        fields.get("velv_mem_pressure_level").map(String::as_str),
        Some("3")
    );
    let counter = |name: &str| -> u64 {
        fields
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or_default()
    };
    assert!(counter("velv_mem_pressure_trips_total") >= 1);
    assert!(counter("velv_mem_pressure_rejections_total") >= 1);

    // Deep-measured footprints cover the cache, the queue and (with a store
    // attached) the index.
    let measured = service.measured_footprints();
    let names: Vec<&str> = measured.iter().map(|(name, _)| *name).collect();
    assert!(names.contains(&"serve.cache"), "measured: {names:?}");
    assert!(names.contains(&"serve.queue"), "measured: {names:?}");
    assert!(names.contains(&"store.index"), "measured: {names:?}");

    service.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}
