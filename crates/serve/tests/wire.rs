//! Wire-level tests: concurrent TCP clients hammering the model catalog,
//! batch submission, proof retrieval, stats, and shutdown.

use std::time::Duration;
use velv_serve::proto::Request;
use velv_serve::{serve, JobSpec, ServeClient, ServeHandle, ServiceConfig, StatsFormat};

fn start_server(workers: usize) -> (velv_serve::ServerControl, std::net::SocketAddr, ServeHandle) {
    let handle = ServeHandle::start(ServiceConfig::default().with_workers(workers));
    let control = serve(handle.clone(), "127.0.0.1:0").expect("bind an ephemeral port");
    let addr = control.addr();
    (control, addr, handle)
}

#[test]
fn concurrent_clients_hammer_the_catalog() {
    let (control, addr, _handle) = start_server(4);
    // Three clients, each sweeping the same slice of the DLX catalog plus an
    // out-of-order core: 3 × 4 submissions of 4 unique jobs.
    let catalog = [
        ("dlx1:correct", "correct"),
        ("dlx1:bug:0", "buggy"),
        ("dlx1:bug:1", "buggy"),
        ("ooo:2", "correct"),
    ];
    let clients: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for (model, expected) in catalog {
                    let spec = JobSpec::parse_wire(&format!("model={model}")).unwrap();
                    let reply = client.submit(spec).expect("submit succeeds");
                    assert_eq!(reply.verdict, expected, "{model}");
                    if expected == "buggy" {
                        assert!(!reply.cex_true.is_empty(), "{model} has a counterexample");
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    let mut client = ServeClient::connect(addr).expect("connect");
    let stats: std::collections::HashMap<String, u64> =
        client.stats().expect("stats").into_iter().collect();
    assert_eq!(stats["velv_serve_jobs_submitted_total"], 12);
    assert_eq!(
        stats["velv_serve_translations_total"], 4,
        "4 unique fingerprints solve exactly once; the other 8 submissions \
         hit the cache or joined in flight"
    );
    assert_eq!(
        stats["velv_serve_cache_hits_total"] + stats["velv_serve_dedup_joins_total"],
        8
    );
    assert_eq!(
        stats["velv_serve_verdict_correct_total"] + stats["velv_serve_verdict_buggy_total"],
        4
    );
    client.shutdown().expect("shutdown");
    control.wait();
}

#[test]
fn batch_over_the_wire_matches_expectations() {
    let (control, addr, _handle) = start_server(2);
    let mut client = ServeClient::connect(addr).expect("connect");
    let specs = vec![
        JobSpec::parse_wire("model=dlx1:bug:2").unwrap(),
        JobSpec::parse_wire("model=dlx1:correct").unwrap(),
        JobSpec::parse_wire("model=dlx1:bug:2").unwrap(),
    ];
    let response = client.batch(specs).expect("batch succeeds");
    assert_eq!(response.field("count"), Some("3"));
    let jobs = response.all("job");
    assert_eq!(jobs.len(), 3);
    assert!(jobs[0].contains("verdict=buggy"), "{}", jobs[0]);
    assert!(jobs[1].contains("verdict=correct"), "{}", jobs[1]);
    assert!(jobs[2].contains("verdict=buggy"), "{}", jobs[2]);
    // The duplicate third entry must not have been solved twice.
    let stats: std::collections::HashMap<String, u64> =
        client.stats().expect("stats").into_iter().collect();
    assert_eq!(
        stats["velv_serve_dedup_joins_total"] + stats["velv_serve_cache_hits_total"],
        1
    );
    client.shutdown().expect("shutdown");
    control.wait();
}

#[test]
fn vliw_catalog_entry_is_served() {
    let (control, addr, _handle) = start_server(2);
    let mut client = ServeClient::connect(addr).expect("connect");
    let reply = client
        .submit(JobSpec::parse_wire("model=vliw:bug:0").unwrap())
        .expect("submit succeeds");
    assert_eq!(reply.verdict, "buggy");
    client.shutdown().expect("shutdown");
    control.wait();
}

#[test]
fn proof_artifacts_round_trip_over_the_wire() {
    let (control, addr, _handle) = start_server(2);
    let mut client = ServeClient::connect(addr).expect("connect");
    let reply = client
        .submit(JobSpec::parse_wire("model=dlx1:correct keep-proof=1").unwrap())
        .expect("submit succeeds");
    assert_eq!(reply.verdict, "correct");
    assert!(!reply.cached);
    let proof = client.proof(&reply.fingerprint).expect("stored proof");
    assert!(!proof.is_empty());
    // An uncached fingerprint is a clean error, not a hang.
    let missing = client.proof(&"0".repeat(32));
    assert!(missing.is_err());
    client.shutdown().expect("shutdown");
    control.wait();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let (control, addr, _handle) = start_server(1);
    let mut client = ServeClient::connect(addr).expect("connect");
    // Unknown command: the server answers `err ...` and keeps the
    // connection alive.
    let err = client.request(&Request::Submit {
        spec: JobSpec::parse_wire("model=dlx1:bug:9999").unwrap(),
        trace: None,
    });
    assert!(err.is_err());
    client.ping().expect("the connection survived the error");
    client.shutdown().expect("shutdown");
    control.wait();
}

#[test]
fn every_registered_metric_reaches_the_wire() {
    let (control, addr, handle) = start_server(2);
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .submit(JobSpec::parse_wire("model=dlx1:bug:0").unwrap())
        .expect("submit succeeds");

    let response = client
        .request(&Request::Stats(StatsFormat::Flat))
        .expect("stats");
    let wire_keys: std::collections::HashSet<&str> =
        response.fields.iter().map(|(k, _)| k.as_str()).collect();
    let registered = handle.registry_snapshot();
    let flat = registered.flat_fields();
    assert!(!flat.is_empty(), "the service registers metrics");
    for (key, _) in &flat {
        assert!(
            wire_keys.contains(key.as_str()),
            "registered metric `{key}` is missing from the wire stats payload"
        );
    }
    // The class-labelled latency series reach the wire explicitly: one
    // completed normal-priority job must show up under class="normal".
    for family in [
        "velv_serve_queue_wait_micros",
        "velv_serve_job_wall_class_micros",
    ] {
        let key = format!("{family}_count{{class=\"normal\"}}");
        let count = response
            .fields
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| v.parse::<u64>().ok());
        assert_eq!(count, Some(1), "labelled series `{key}` reaches the wire");
    }
    // The derived percentile gauges are non-zero once a job completed.
    for gauge in [
        "velv_serve_job_wall_p50_micros",
        "velv_serve_job_wall_p95_micros",
        "velv_serve_job_wall_p99_micros",
    ] {
        let value = response
            .fields
            .iter()
            .find(|(k, _)| k == gauge)
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("gauge `{gauge}` missing from the wire stats"));
        assert!(value > 0, "`{gauge}` is non-zero after a completed job");
    }
    // The SLO block is exported: target, attainment and burn are consistent.
    let field = |key: &str| {
        response
            .fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse::<i64>().ok())
            .unwrap_or_else(|| panic!("`{key}` missing from the wire stats"))
    };
    assert!(field("velv_serve_slo_target_micros") > 0);
    let attainment = field("velv_serve_slo_attainment_permille");
    let burn = field("velv_serve_slo_burn_permille");
    assert_eq!(
        attainment + burn,
        1000,
        "attainment and burn are permille complements"
    );
    client.shutdown().expect("shutdown");
    control.wait();
}

#[test]
fn status_and_flight_verbs_report_live_state() {
    let (control, addr, _handle) = start_server(2);
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .submit(JobSpec::parse_wire("model=dlx1:bug:3").unwrap())
        .expect("submit succeeds");

    let status = client.status().expect("status");
    assert_eq!(status.field("workers"), Some("2"));
    assert_eq!(status.field("shut-down"), Some("0"));
    assert!(status.field("queued").is_some());
    assert!(status.field("running").is_some());

    // The service armed the flight recorder at start, so the just-finished
    // job's spans are in the ring even though no trace sink is installed.
    let lines = client.flight().expect("flight snapshot");
    assert!(!lines.is_empty(), "the flight ring captured the job");
    let joined = lines.join("\n");
    assert!(joined.contains("\"serve.job\""), "{joined}");
    for line in &lines {
        velv_obs::parse_trace_line(line).expect("flight lines are valid flat JSON");
    }
    client.shutdown().expect("shutdown");
    control.wait();
}

#[test]
fn prometheus_stats_parse_as_valid_exposition_text() {
    let (control, addr, _handle) = start_server(2);
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .submit(JobSpec::parse_wire("model=dlx1:correct").unwrap())
        .expect("submit succeeds");

    let prom = client
        .stats_text(StatsFormat::Prometheus)
        .expect("prometheus payload");
    velv_obs::validate_prometheus_text(&prom).expect("valid Prometheus exposition text");
    assert!(prom.contains("velv_serve_jobs_submitted_total"), "{prom}");

    let json = client.stats_text(StatsFormat::Json).expect("json payload");
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("velv_serve_jobs_submitted_total"), "{json}");

    client.shutdown().expect("shutdown");
    control.wait();
}

#[test]
fn shutdown_flushes_trace_buffers_through_the_tcp_harness() {
    // The tracer is process-global; this is the only wire test that installs
    // a sink, and it filters on serve-specific record names so records from
    // concurrently running servers cannot break it.
    let sink = std::sync::Arc::new(velv_obs::MemorySink::new());
    velv_obs::install_sink(sink.clone());

    let (control, addr, _handle) = start_server(2);
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .submit(JobSpec::parse_wire("model=dlx1:bug:1").unwrap())
        .expect("submit succeeds");
    client.shutdown().expect("shutdown");
    control.wait();
    velv_obs::uninstall_sink();

    let contents = sink.contents();
    let summary = velv_obs::check_trace(&contents).expect("well-formed trace capture");
    assert!(summary.records > 0, "shutdown drained the trace buffers");
    assert!(
        contents.contains("\"serve.shutdown\""),
        "the graceful shutdown event reached the sink: {contents}"
    );
    assert!(
        contents.contains("\"serve.job\""),
        "the job span reached the sink: {contents}"
    );
}

#[test]
fn stopping_the_control_tears_everything_down() {
    let (control, addr, _handle) = start_server(1);
    {
        let mut client = ServeClient::connect(addr).expect("connect");
        client.ping().expect("ping");
    }
    let start = std::time::Instant::now();
    control.stop();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "stop joins accept/connection/worker threads promptly"
    );
    // The port is no longer served: a fresh connection cannot complete an
    // exchange.
    if let Ok(mut client) = ServeClient::connect(addr) {
        assert!(client.ping().is_err());
    }
}
