//! Worker-panic containment, in its own process: the test arms the
//! process-global `serve.worker.run` failpoint, which any concurrently
//! running job would consume — integration test binaries run one per
//! process, so isolating the file isolates the failpoint.

use velv_serve::{JobSpec, ModelRef, ServeHandle, ServiceConfig};
use velv_store::{failpoint, FailAction};

#[test]
fn a_panicking_worker_yields_an_error_verdict_and_the_pool_keeps_serving() {
    // A panicking worker must dump the flight ring; point the dumps at a
    // scratch directory so the test can inspect them.
    let dump_dir = std::env::temp_dir().join(format!("velv-flight-panic-{}", std::process::id()));
    std::fs::create_dir_all(&dump_dir).expect("create flight dump dir");
    velv_obs::flight::set_dump_dir(Some(dump_dir.as_path()));

    let service = ServeHandle::start(ServiceConfig::default().with_workers(2));

    // The next job a worker picks up panics mid-run (one-shot trigger).
    failpoint::global().arm("serve.worker.run", 0, FailAction::Panic);
    let poisoned = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted")
        .wait();
    match &poisoned.verdict {
        velv_core::Verdict::Unknown(reason) => {
            assert!(reason.contains("panicked"), "{reason}");
        }
        other => panic!("a panicked job must resolve unknown, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.persisted, 0, "panic verdicts are never persisted");

    // The dump landed before the panic verdict was delivered, so it is
    // already on disk here — and it holds the panicking job's span.
    let dumps: Vec<std::path::PathBuf> = std::fs::read_dir(&dump_dir)
        .expect("read dump dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("FLIGHT-") && n.ends_with(".jsonl"))
        })
        .collect();
    assert!(!dumps.is_empty(), "the worker panic produced a flight dump");
    let contents = dumps
        .iter()
        .map(|p| std::fs::read_to_string(p).expect("read flight dump"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        contents.contains("\"flight.dump\"") && contents.contains("worker-panic"),
        "the dump header records the trigger: {contents}"
    );
    assert!(
        contents.contains("\"serve.job\""),
        "the dump contains the panicking job's span: {contents}"
    );
    velv_obs::flight::set_dump_dir(None);
    let _ = std::fs::remove_dir_all(&dump_dir);

    // The panic took neither the worker pool nor the cache integrity with
    // it: the identical resubmission runs fresh (nothing was cached) and
    // decides correctly on the same workers.
    let retry = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted")
        .wait();
    assert!(retry.verdict.is_correct(), "{:?}", retry.verdict);
    assert!(!retry.from_cache, "the panic left nothing in the cache");
    let stats = service.stats();
    assert_eq!(stats.worker_panics, 1, "the trigger was one-shot");
    assert_eq!(stats.fresh_solves, 1);
    assert_eq!(stats.cache_hits, 0);

    // And the cache works again after the incident.
    let warm = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted")
        .wait();
    assert!(warm.from_cache);
    service.shutdown();
}
