//! Service-side solve profiling: a profile-sink-equipped service must cache
//! a parseable [`velv_obs::SolveProfile`] next to each decided verdict, with
//! a phase tree whose children account for the job wall time, and the
//! artifact must survive the crash-safe store round trip.
//!
//! These tests install the process trace sink, so they live in their own
//! integration-test binary (test binaries share the sink slot).

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use velv_obs::{ProfileSink, SolveProfile};
use velv_serve::{JobSpec, ModelRef, ServeHandle, ServiceConfig};

/// The process-wide trace sink slot is shared: tests that install a sink
/// must not overlap.
fn sink_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One service with the profile sink armed, exactly as `velvd` wires it.
fn profiled_service(configure: impl FnOnce(&mut ServiceConfig)) -> (ServeHandle, Arc<ProfileSink>) {
    let sink = Arc::new(ProfileSink::new());
    velv_obs::install_sink(sink.clone());
    let mut config = ServiceConfig::default()
        .with_workers(2)
        .with_profile_sink(sink.clone());
    configure(&mut config);
    (ServeHandle::start(config), sink)
}

fn fetch_profile(service: &ServeHandle, spec: JobSpec) -> SolveProfile {
    let ticket = service.submit(spec).expect("accepted");
    let result = ticket.wait();
    assert!(
        !matches!(result.verdict, velv_core::Verdict::Unknown(_)),
        "profiled test jobs must decide: {:?}",
        result.verdict
    );
    let entry = service
        .cached(ticket.fingerprint())
        .expect("decided verdicts are cached");
    let jsonl = entry.profile.as_ref().expect("profile recorded");
    SolveProfile::parse(jsonl).expect("cached profile parses")
}

#[test]
fn single_jobs_cache_a_parseable_profile_with_phase_attribution() {
    let _lock = sink_lock();
    let (service, _sink) = profiled_service(|_| {});

    let profile = fetch_profile(&service, JobSpec::new(ModelRef::dlx1_correct()));
    assert_eq!(profile.result, "correct");
    assert!(!profile.instance.is_empty());
    assert!(
        !profile.samples.is_empty(),
        "end-of-solve flush guarantees at least one sample"
    );
    let last = profile.samples.last().unwrap();
    assert_eq!(last.conflicts, profile.conflicts);
    assert!(
        profile.conflicts > 0,
        "dlx1 is not solved without conflicts"
    );
    assert!(
        profile.markers.iter().any(|m| m.kind == "solve"),
        "begin_solve marks the engine entry"
    );

    // Phase attribution: one root (the serve.job span), its children
    // (translate + solve) accounting for most of the job wall.
    assert_eq!(profile.phases.len(), 1, "{:?}", profile.phases);
    let root = &profile.phases[0];
    assert_eq!(root.name, "serve.job");
    assert!(root.total_us > 0);
    assert!(!root.children.is_empty(), "translate/solve spans folded in");
    assert!(
        root.children_total_us() <= root.total_us,
        "children cannot exceed the measured wall"
    );
    let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
    assert!(
        names.iter().any(|n| n.contains("solve")),
        "a solve phase is attributed: {names:?}"
    );

    // A second distinct job must get its own tree, not residue of the first.
    let second = fetch_profile(&service, JobSpec::new(ModelRef::dlx1_bug(0)));
    assert_eq!(second.result, "buggy");
    assert_eq!(second.phases.len(), 1);

    service.shutdown();
    velv_obs::uninstall_sink();
}

#[test]
fn profiles_survive_the_store_round_trip() {
    let _lock = sink_lock();
    let dir = std::env::temp_dir().join(format!("velv-profile-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let fingerprint;
    let original;
    {
        let (service, _sink) = profiled_service(|config| {
            config.store_dir = Some(dir.clone());
        });
        let ticket = service
            .submit(JobSpec::new(ModelRef::dlx1_correct()))
            .expect("accepted");
        ticket.wait();
        fingerprint = ticket.fingerprint();
        original = service
            .cached(fingerprint)
            .expect("cached")
            .profile
            .as_ref()
            .expect("profile recorded")
            .to_string();
        service.shutdown();
        velv_obs::uninstall_sink();
    }

    // A restarted service replays the store into its cache: the profile must
    // come back byte-identical and still parse.
    let mut config = ServiceConfig::default().with_workers(1);
    config.store_dir = Some(dir.clone());
    let service = ServeHandle::start(config);
    let entry = service
        .cached(fingerprint)
        .expect("replayed from the store");
    let replayed = entry.profile.as_ref().expect("profile survived the store");
    assert_eq!(replayed.as_str(), original);
    SolveProfile::parse(replayed).expect("replayed profile parses");
    service.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
