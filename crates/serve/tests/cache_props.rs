//! Model-based randomized test of the LRU verdict cache: a long random
//! get/insert workload is mirrored against a naive reference implementation
//! with the same semantics (move-to-front on hit, insert at front, evict from
//! the back while over the byte budget, refuse oversize entries).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use velv_core::{Certificate, Counterexample, Verdict};
use velv_eufm::Fingerprint;
use velv_obs::MemFootprint;
use velv_sat::rng::SmallRng;
use velv_serve::{CachedVerdict, VerdictCache};

/// The reference: a plain MRU-ordered vector of `(key, bytes)`.
struct ReferenceLru {
    capacity: usize,
    entries: Vec<(u128, usize)>,
}

impl ReferenceLru {
    fn new(capacity: usize) -> Self {
        ReferenceLru {
            capacity,
            entries: Vec::new(),
        }
    }

    fn bytes(&self) -> usize {
        self.entries.iter().map(|(_, b)| b).sum()
    }

    fn get(&mut self, key: u128) -> bool {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let entry = self.entries.remove(pos);
            self.entries.insert(0, entry);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: u128, bytes: usize) {
        if bytes > self.capacity {
            return; // oversize: refused
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (key, bytes));
        while self.bytes() > self.capacity {
            self.entries.pop();
        }
    }
}

fn entry_of(bytes: usize) -> CachedVerdict {
    // Overhead of an entry with an *empty* proof: the accounting charges the
    // proof's Arc and Vec headers even at length zero, so padding the proof
    // by `bytes - overhead` yields an entry of exactly `bytes`.
    let base = CachedVerdict {
        verdict: Verdict::Correct,
        certificate: None,
        proof_drat: Some(Arc::new(Vec::new())),
        solve_time: Duration::from_millis(1),
        translation_stats: None,
        profile: None,
    };
    let overhead = base.approx_bytes();
    assert!(
        bytes >= overhead,
        "test sizes start above the fixed overhead"
    );
    CachedVerdict {
        proof_drat: Some(Arc::new(vec![b'p'; bytes - overhead])),
        ..base
    }
}

/// The fixed accounting overhead of a padded entry — sizes fed to
/// [`entry_of`] must stay at or above this floor.
fn entry_overhead() -> usize {
    CachedVerdict {
        verdict: Verdict::Correct,
        certificate: None,
        proof_drat: Some(Arc::new(Vec::new())),
        solve_time: Duration::from_millis(1),
        translation_stats: None,
        profile: None,
    }
    .approx_bytes()
}

#[test]
fn randomized_workload_matches_the_reference_model() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for round in 0..20 {
        let capacity = 2_000 + 500 * round;
        // One shard so the global LRU order is observable.
        let cache = VerdictCache::new(capacity, 1);
        let mut reference = ReferenceLru::new(capacity);
        let keys: Vec<u128> = (0..24).map(|i| 1 + i as u128 * 7919).collect();
        for _ in 0..400 {
            let key = keys[rng.gen_range(0..keys.len())];
            if rng.gen_bool(0.45) {
                let hit = cache.get(Fingerprint(key)).is_some();
                let expected = reference.get(key);
                assert_eq!(hit, expected, "lookup of {key} diverged (round {round})");
            } else {
                // Entry sizes: mostly small, occasionally large enough to
                // evict several entries, occasionally oversize.
                let bytes = match rng.gen_range(0..10) {
                    0 => capacity + 1, // refused
                    1..=2 => capacity / 2,
                    _ => entry_overhead() + rng.gen_range(0..300),
                };
                cache.insert(Fingerprint(key), entry_of(bytes));
                reference.insert(key, bytes);
            }
            let stats = cache.stats();
            assert_eq!(
                stats.entries as usize,
                reference.entries.len(),
                "entry count diverged (round {round})"
            );
            assert_eq!(
                stats.bytes as usize,
                reference.bytes(),
                "byte accounting diverged (round {round})"
            );
            assert!(stats.bytes <= stats.capacity_bytes);
        }
        // Drain check: every key the reference kept is resident, every key
        // it evicted is gone.
        for &key in &keys {
            let resident = reference.entries.iter().any(|(k, _)| *k == key);
            assert_eq!(
                cache.get(Fingerprint(key)).is_some(),
                resident,
                "final residency of {key} diverged (round {round})"
            );
            // Keep the reference in step with the probe we just made.
            reference.get(key);
        }
    }
}

/// The ISSUE-level reconciliation property: across randomized verdicts —
/// every verdict shape, optional proof/profile/certificate artifacts of
/// random sizes — the cheap accounting estimate stays within 2× of the deep
/// measured footprint in both directions.
#[test]
fn approx_bytes_within_2x_of_measured_for_random_verdicts() {
    let mut rng = SmallRng::seed_from_u64(0x2BAD_FEED);
    for case in 0..500 {
        let verdict = match rng.gen_range(0..3) {
            0 => Verdict::Correct,
            1 => {
                let mut assignments = BTreeMap::new();
                for v in 0..rng.gen_range(0..40) {
                    let name = format!("e!s{case}v{v}={}", rng.gen_range(0..1000));
                    assignments.insert(name, rng.gen_bool(0.5));
                }
                Verdict::Buggy(Counterexample::from_assignments(assignments))
            }
            _ => Verdict::Unknown("t".repeat(rng.gen_range(0..200))),
        };
        let entry = CachedVerdict {
            verdict,
            certificate: rng
                .gen_bool(0.3)
                .then(|| Certificate::Unchecked("model validation disabled".to_owned())),
            proof_drat: rng
                .gen_bool(0.5)
                .then(|| Arc::new(vec![b'd'; rng.gen_range(0..4096)])),
            solve_time: Duration::from_millis(rng.gen_range(0..50) as u64),
            translation_stats: None,
            profile: rng
                .gen_bool(0.4)
                .then(|| Arc::new("p".repeat(rng.gen_range(0..2048)))),
        };
        let approx = entry.approx_bytes();
        let measured = entry.measured_bytes();
        assert!(
            approx <= 2 * measured,
            "case {case}: estimate {approx} exceeds 2x measured {measured}"
        );
        assert!(
            measured <= 2 * approx,
            "case {case}: measured {measured} exceeds 2x estimate {approx}"
        );
    }
}

#[test]
fn sharded_cache_partitions_consistently() {
    // With several shards the per-key behaviour is still exact LRU within a
    // shard; globally we can at least assert residency of everything that
    // fits comfortably and correct byte totals.
    let cache = VerdictCache::new(1 << 20, 8);
    for i in 0..200u128 {
        cache.insert(Fingerprint(i * 7919 + 1), entry_of(entry_overhead() + 200));
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, 200);
    assert_eq!(stats.evictions, 0);
    for i in 0..200u128 {
        assert!(cache.get(Fingerprint(i * 7919 + 1)).is_some());
    }
}
