//! Robustness tests: verdict-store durability across restarts, degraded
//! operation under injected store failures, overload shedding, per-client
//! quotas, and client-side retry/timeout classification.

use std::io::BufReader;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use velv_sat::{Budget, CnfFormula, SatResult, Solver, SolverStats};
use velv_serve::proto::{read_frame, write_frame};
use velv_serve::{
    serve, ClientConfig, ClientError, JobSpec, JobStatus, ModelRef, ServeClient, ServeError,
    ServeHandle, ServiceConfig,
};
use velv_store::{FailAction, Failpoints};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("velv_serve_robust_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn store_config(dir: &Path, workers: usize) -> ServiceConfig {
    let mut config = ServiceConfig::default().with_workers(workers);
    config.store_dir = Some(dir.to_path_buf());
    config
}

/// A slow but real engine: holds its worker for `DELAY`, then decides with
/// the reference CDCL solver.  Lets the overload test saturate a bounded
/// queue while the accepted jobs still produce genuine verdicts.  The hold
/// is generous because `submit` builds the EUFM problem synchronously and
/// the shed/busy submissions must all land inside the first job's run.
struct SlowChaff;

impl SlowChaff {
    const DELAY: Duration = Duration::from_millis(2000);
}

impl Solver for SlowChaff {
    fn name(&self) -> &str {
        "slow-chaff"
    }
    fn is_complete(&self) -> bool {
        true
    }
    fn solve_with_budget(&mut self, cnf: &CnfFormula, budget: Budget) -> SatResult {
        std::thread::sleep(Self::DELAY);
        velv_sat::cdcl::CdclSolver::chaff().solve_with_budget(cnf, budget)
    }
    fn stats(&self) -> SolverStats {
        SolverStats::default()
    }
}

fn wait_until(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn unknown_reason(verdict: &velv_core::Verdict) -> String {
    match verdict {
        velv_core::Verdict::Unknown(reason) => reason.clone(),
        other => panic!("expected an unknown verdict, got {other:?}"),
    }
}

#[test]
fn decided_verdicts_survive_a_restart_without_resolving() {
    let dir = temp_dir("restart");

    // First life: decide one correct job (keeping its proof) and one buggy
    // job, both persisted before their responses were delivered.
    let service = ServeHandle::try_start(store_config(&dir, 2)).expect("start with a store");
    let mut proved = JobSpec::new(ModelRef::dlx1_correct());
    proved.keep_proof = true;
    let ticket = service.submit(proved.clone()).expect("accepted");
    let fingerprint = ticket.fingerprint();
    assert!(ticket.wait().verdict.is_correct());
    let buggy = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted")
        .wait();
    assert!(buggy.verdict.is_buggy());
    let first_cex = buggy.verdict.counterexample().unwrap().clone();
    let stats = service.stats();
    assert_eq!(stats.persisted, 2, "both decided verdicts hit the log");
    assert_eq!(stats.translations, 2);
    service.shutdown();
    drop(service);

    // Second life, same directory: the log replays into the cache and both
    // jobs are answered without any translation or solver work.
    let service = ServeHandle::try_start(store_config(&dir, 2)).expect("restart on the same dir");
    let report = service.store_recovery().expect("a store is configured");
    assert_eq!(report.live, 2, "both records recovered: {report:?}");
    assert_eq!(report.truncated_bytes, 0, "clean shutdown leaves no tear");
    assert_eq!(service.stats().replayed, 2);

    let warm = service.submit(proved).expect("accepted").wait();
    assert!(warm.verdict.is_correct());
    assert!(warm.from_cache, "warm boot serves from the replayed cache");
    let entry = service.cached(fingerprint).expect("replayed entry");
    let proof = entry.proof_drat.as_ref().expect("sidecar proof survived");
    assert!(!proof.is_empty());

    let rebug = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted")
        .wait();
    assert!(rebug.from_cache);
    assert_eq!(
        rebug.verdict.counterexample().unwrap(),
        &first_cex,
        "the recovered counterexample is byte-identical"
    );

    let stats = service.stats();
    assert_eq!(stats.translations, 0, "zero re-translation after replay");
    assert_eq!(stats.fresh_solves, 0, "zero re-solve after replay");
    assert_eq!(stats.cache_hits, 2);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_failures_degrade_to_serving_without_persistence() {
    let dir = temp_dir("degraded");
    let failpoints = Arc::new(Failpoints::new());
    failpoints.arm("store.append.body", 0, FailAction::Error);
    let mut config = store_config(&dir, 2);
    config.store_failpoints = Some(Arc::clone(&failpoints));

    // The first append fails (and poisons the store until reopen); every
    // verdict must still be computed and delivered.
    let service = ServeHandle::try_start(config).expect("start with a store");
    let first = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted")
        .wait();
    assert!(first.verdict.is_correct(), "served despite the dead store");
    let second = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted")
        .wait();
    assert!(second.verdict.is_buggy());
    let stats = service.stats();
    assert_eq!(stats.persisted, 0, "nothing landed in the poisoned log");
    let errors: u64 = service
        .registry_snapshot()
        .flat_fields()
        .into_iter()
        .find(|(k, _)| k == "velv_serve_persist_errors_total")
        .and_then(|(_, v)| v.parse().ok())
        .expect("the persist error counter is exported");
    assert_eq!(errors, 2);
    service.shutdown();
    drop(service);

    // A restart on the same directory finds an empty (or truncated-to-empty)
    // log and simply re-solves: degraded, never wrong.
    let service = ServeHandle::try_start(store_config(&dir, 2)).expect("restart");
    assert_eq!(service.store_recovery().expect("store configured").live, 0);
    let retry = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted")
        .wait();
    assert!(retry.verdict.is_correct());
    assert!(
        !retry.from_cache,
        "nothing was persisted, so nothing replays"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_the_lowest_priority_job_and_rejects_as_busy() {
    let mut config = ServiceConfig::default().with_workers(1);
    config.engine_override = Some(Arc::new(|| Box::new(SlowChaff)));
    config.max_queue_depth = Some(1);
    let service = ServeHandle::start(config);

    // Occupy the single worker, then fill the one queue slot.
    let parked = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted");
    wait_until("the filler job to start", || {
        parked.status() == JobStatus::Running
    });
    let low = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted");
    assert_eq!(low.status(), JobStatus::Queued);

    // A higher-priority submission evicts the queued low-priority job, which
    // resolves as a busy shed instead of waiting forever.
    let high = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(1)).with_priority(5))
        .expect("accepted: sheds the lower-priority occupant");
    let shed = low.wait();
    assert!(
        unknown_reason(&shed.verdict).contains("shed"),
        "the victim learns it was shed: {:?}",
        shed.verdict
    );
    assert_eq!(service.stats().shed, 1);

    // An equal-or-lower-priority submission cannot evict anyone and bounces
    // with `Busy` — the queue never grows past its bound.
    let bounced = service.submit(JobSpec::new(ModelRef::dlx1_bug(2)));
    assert!(matches!(bounced, Err(ServeError::Busy(_))));
    assert_eq!(service.stats().busy_rejections, 1);
    assert_eq!(high.status(), JobStatus::Queued, "the winner kept its slot");

    // A shed fingerprint is fully released: resubmitting it at a priority
    // that wins admission schedules a fresh job (no dedup corpse).
    let again = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)).with_priority(9))
        .expect("accepted after shedding the priority-5 job");
    assert_eq!(service.stats().shed, 2);
    assert_eq!(service.stats().dedup_joins, 0);
    assert_eq!(again.status(), JobStatus::Queued);
    let evicted = high.wait();
    assert!(unknown_reason(&evicted.verdict).contains("shed"));

    // Overload never harms the jobs that won admission: both complete with
    // genuine verdicts once the worker gets to them.
    let first = parked.wait();
    assert!(
        first.verdict.is_correct(),
        "the running job finished normally"
    );
    assert!(!first.from_cache);
    let survivor = again.wait();
    assert!(
        survivor.verdict.is_buggy(),
        "the admitted job was still solved"
    );
    assert!(survivor.verdict.counterexample().is_some());
    assert_eq!(service.stats().fresh_solves, 2);
    service.shutdown();
}

#[test]
fn per_client_quota_rejects_wide_batches_as_busy() {
    let mut config = ServiceConfig::default().with_workers(2);
    config.per_client_quota = 2;
    let handle = ServeHandle::start(config);
    let control = serve(handle.clone(), "127.0.0.1:0").expect("bind");
    let addr = control.addr();

    let mut client = ServeClient::connect(addr).expect("connect");
    let wide: Vec<JobSpec> = (0..3)
        .map(|i| JobSpec::new(ModelRef::dlx1_bug(i)))
        .collect();
    match client.batch(wide) {
        Err(ClientError::Busy(reason)) => {
            assert!(reason.contains("quota"), "{reason}");
        }
        other => panic!("expected a busy rejection, got {other:?}"),
    }
    let stats: std::collections::HashMap<String, u64> =
        client.stats().expect("stats").into_iter().collect();
    assert_eq!(stats["velv_serve_quota_rejections_total"], 1);
    assert_eq!(
        stats["velv_serve_jobs_submitted_total"], 0,
        "the rejected batch scheduled nothing"
    );

    // At the quota, the batch is admitted and completes normally.
    let narrow: Vec<JobSpec> = (0..2)
        .map(|i| JobSpec::new(ModelRef::dlx1_bug(i)))
        .collect();
    let response = client.batch(narrow).expect("within quota");
    assert_eq!(response.all("job").len(), 2);
    drop(client);
    control.stop();
}

#[test]
fn busy_replies_are_retried_on_the_same_connection_until_the_server_recovers() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        // First attempt: overloaded.  Second attempt (same connection —
        // busy retries must not redial): recovered.
        read_frame(&mut reader).expect("read").expect("a request");
        write_frame(&mut writer, "busy draining the queue").expect("write");
        read_frame(&mut reader).expect("read").expect("the retry");
        write_frame(&mut writer, "ok\npong 1").expect("write");
    });

    let config = ClientConfig {
        retries: 2,
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let mut client = ServeClient::connect_with(addr, config).expect("connect");
    client.ping().expect("the retry after busy succeeds");
    server.join().expect("fake server");
}

#[test]
fn busy_without_retries_fails_fast_with_the_reason() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        read_frame(&mut reader).expect("read").expect("a request");
        write_frame(&mut writer, "busy per-client quota is 2 jobs in flight").expect("write");
        // Drain until the client hangs up.
        while let Ok(Some(_)) = read_frame(&mut reader) {}
    });

    let mut client = ServeClient::connect(addr).expect("connect");
    match client.ping() {
        Err(ClientError::Busy(reason)) => assert!(reason.contains("quota"), "{reason}"),
        other => panic!("expected busy, got {other:?}"),
    }
    drop(client);
    server.join().expect("fake server");
}

#[test]
fn a_silent_server_times_out_instead_of_hanging() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        // Read requests but never answer; exit when the client hangs up.
        while let Ok(Some(_)) = read_frame(&mut reader) {}
    });

    let config = ClientConfig {
        timeout: Some(Duration::from_millis(50)),
        ..ClientConfig::default()
    };
    let mut client = ServeClient::connect_with(addr, config).expect("connect");
    let started = Instant::now();
    match client.ping() {
        Err(ClientError::Timeout) => {}
        other => panic!("expected a timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the timeout fired, not a hang"
    );
    drop(client);
    server.join().expect("fake server");
}
