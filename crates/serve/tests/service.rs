//! In-process service tests: cache hits, in-flight deduplication, batch
//! scheduling, cancellation on client disconnect, and shutdown.

use std::sync::Arc;
use std::time::{Duration, Instant};
use velv_sat::{Budget, CnfFormula, SatResult, Solver, SolverStats};
use velv_serve::{
    BackendChoice, JobSpec, JobStatus, ModelRef, ServeHandle, ServiceConfig, SolveMode,
};

/// An engine that never answers: it spins until its budget (cancel token or
/// deadline) stops it.  Lets the tests park a worker deterministically.
struct SpinSolver;

impl Solver for SpinSolver {
    fn name(&self) -> &str {
        "spin"
    }
    fn is_complete(&self) -> bool {
        false
    }
    fn solve_with_budget(&mut self, _cnf: &CnfFormula, budget: Budget) -> SatResult {
        let budget = budget.started();
        loop {
            for _ in 0..256 {
                std::hint::spin_loop();
            }
            if let Some(reason) = budget.exceeded() {
                return SatResult::Unknown(reason);
            }
        }
    }
    fn stats(&self) -> SolverStats {
        SolverStats::default()
    }
}

fn spin_service(workers: usize) -> ServeHandle {
    let mut config = ServiceConfig::default().with_workers(workers);
    config.engine_override = Some(Arc::new(|| Box::new(SpinSolver)));
    ServeHandle::start(config)
}

fn wait_until(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn cache_hit_skips_translation_and_solver() {
    let service = ServeHandle::start(ServiceConfig::default().with_workers(2));
    let first = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted")
        .wait();
    assert!(first.verdict.is_correct(), "{:?}", first.verdict);
    assert!(!first.from_cache);

    let stats = service.stats();
    assert_eq!(stats.translations, 1);
    assert_eq!(stats.fresh_solves, 1);
    assert_eq!(stats.cache_hits, 0);

    let second = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted")
        .wait();
    assert!(second.from_cache);
    assert!(second.verdict.is_correct());
    assert_eq!(second.solve_time, Duration::ZERO);

    // The acceptance bar: a re-submitted identical job must not invoke
    // translation or a solver.
    let stats = service.stats();
    assert_eq!(stats.translations, 1, "no second translation");
    assert_eq!(stats.fresh_solves, 1, "no second solve");
    assert_eq!(stats.cache_hits, 1);
    service.shutdown();
}

#[test]
fn cached_and_fresh_counterexamples_are_identical() {
    let service = ServeHandle::start(ServiceConfig::default().with_workers(2));
    let fresh = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted")
        .wait();
    let cached = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted")
        .wait();
    assert!(fresh.verdict.is_buggy());
    assert!(cached.verdict.is_buggy());
    assert!(cached.from_cache);
    let fresh_cex = fresh.verdict.counterexample().unwrap();
    let cached_cex = cached.verdict.counterexample().unwrap();
    assert_eq!(fresh_cex, cached_cex, "the cache returns the same evidence");
    service.shutdown();
}

#[test]
fn option_and_backend_flips_change_the_fingerprint() {
    let service = spin_service(1);
    let base = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted");
    let lazy = {
        let mut spec = JobSpec::new(ModelRef::dlx1_correct());
        spec.options = spec.options.with_lazy_transitivity();
        service.submit(spec).expect("accepted")
    };
    let sato = {
        let mut spec = JobSpec::new(ModelRef::dlx1_correct());
        spec.backend = BackendChoice::Sat(velv_sat::presets::SolverKind::Sato);
        service.submit(spec).expect("accepted")
    };
    let twin = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted");
    assert_ne!(base.fingerprint(), lazy.fingerprint());
    assert_ne!(base.fingerprint(), sato.fingerprint());
    assert_eq!(base.fingerprint(), twin.fingerprint());
    assert_ne!(
        service
            .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
            .expect("accepted")
            .fingerprint(),
        base.fingerprint()
    );
    service.shutdown();
}

#[test]
fn duplicate_submission_subscribes_to_the_running_job() {
    let service = spin_service(1);
    let first = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted");
    let second = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted");
    assert_eq!(first.fingerprint(), second.fingerprint());
    let stats = service.stats();
    assert_eq!(stats.dedup_joins, 1, "second submission joined the first");
    assert!(stats.translations <= 1, "no second translation scheduled");
    // Dropping only one of the two claims must NOT cancel the job ...
    drop(second);
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(service.stats().cancelled, 0);
    // ... dropping the last one must.
    drop(first);
    wait_until("the deduplicated job to be cancelled", || {
        service.stats().cancelled == 1
    });
    service.shutdown();
}

#[test]
fn client_disconnect_cancels_the_running_job_and_frees_the_worker() {
    let service = spin_service(1);
    let ticket = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted");
    wait_until("the job to start running", || {
        ticket.status() == JobStatus::Running
    });
    // The only client walks away: the spin engine must observe the raised
    // token promptly, the job must complete as cancelled, and the single
    // worker must become available again.
    drop(ticket);
    wait_until("the abandoned job to be cancelled", || {
        service.stats().cancelled == 1
    });
    let next = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted");
    wait_until("the worker to pick up new work", || {
        next.status() == JobStatus::Running
    });
    let start = Instant::now();
    service.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown must cancel the spinning worker promptly"
    );
    let result = next.wait();
    assert!(matches!(result.verdict, velv_core::Verdict::Unknown(_)));
}

#[test]
fn shutdown_resolves_queued_jobs_and_joins_workers() {
    let service = spin_service(1);
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit(JobSpec::new(ModelRef::dlx1_bug(i)))
                .expect("accepted")
        })
        .collect();
    wait_until("the first job to start", || {
        tickets[0].status() == JobStatus::Running
    });
    let start = Instant::now();
    service.shutdown();
    assert!(start.elapsed() < Duration::from_secs(5), "prompt shutdown");
    for ticket in &tickets {
        let result = ticket.wait();
        assert!(matches!(result.verdict, velv_core::Verdict::Unknown(_)));
    }
    assert!(service.is_shut_down());
    assert!(matches!(
        service.submit(JobSpec::new(ModelRef::dlx1_correct())),
        Err(velv_serve::ServeError::ShutDown)
    ));
}

#[test]
fn priority_orders_the_queue() {
    let service = spin_service(1);
    // Park the worker, then queue a low- and a high-priority job.
    let parked = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted");
    wait_until("the filler job to start", || {
        parked.status() == JobStatus::Running
    });
    let low = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted");
    let high = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(1)).with_priority(5))
        .expect("accepted");
    // Free the worker; the high-priority job must run first.
    drop(parked);
    wait_until("the high-priority job to start", || {
        high.status() == JobStatus::Running
    });
    assert_eq!(low.status(), JobStatus::Queued);
    service.shutdown();
}

#[test]
fn timeouts_yield_unknown_verdicts_that_are_not_cached() {
    let service = spin_service(2);
    let spec = JobSpec::new(ModelRef::dlx1_correct()).with_timeout(Duration::from_millis(100));
    let result = service.submit(spec.clone()).expect("accepted").wait();
    assert!(matches!(result.verdict, velv_core::Verdict::Unknown(_)));
    assert_eq!(service.stats().translations, 1);
    // Undecided verdicts must not poison the cache: the retry translates
    // and solves again instead of returning the stale timeout.
    let retry = service.submit(spec).expect("accepted").wait();
    assert!(!retry.from_cache);
    assert_eq!(service.stats().translations, 2);
    assert_eq!(service.stats().cache_hits, 0);
    service.shutdown();
}

#[test]
fn batch_matches_single_submissions_and_shares_one_session() {
    let specs = |_| {
        vec![
            JobSpec::new(ModelRef::dlx1_correct()),
            JobSpec::new(ModelRef::dlx1_bug(0)),
            JobSpec::new(ModelRef::dlx1_bug(1)),
            // A within-batch duplicate: must deduplicate, not re-solve.
            JobSpec::new(ModelRef::dlx1_bug(0)),
        ]
    };
    // Batch service.
    let batch_service = ServeHandle::start(ServiceConfig::default().with_workers(2));
    let tickets = batch_service.submit_batch(specs(())).expect("accepted");
    let batch_results: Vec<_> = tickets.iter().map(|t| t.wait()).collect();
    let stats = batch_service.stats();
    assert_eq!(stats.batch_entries, 4);
    assert_eq!(stats.batch_groups, 1, "three unique entries, one session");
    assert_eq!(stats.dedup_joins, 1, "the duplicate subscribed");
    assert_eq!(stats.translations, 1, "one shared translation pass");

    // Reference: the same specs submitted individually to a fresh service.
    let single_service = ServeHandle::start(ServiceConfig::default().with_workers(2));
    let single_results: Vec<_> = specs(())
        .into_iter()
        .map(|spec| single_service.submit(spec).expect("accepted").wait())
        .collect();

    for (batch, single) in batch_results.iter().zip(&single_results) {
        assert_eq!(
            batch.verdict.is_correct(),
            single.verdict.is_correct(),
            "batch and single verdicts must agree for {}",
            batch.name
        );
        assert_eq!(batch.verdict.is_buggy(), single.verdict.is_buggy());
    }
    assert!(batch_results[0].verdict.is_correct());
    assert!(batch_results[1].verdict.is_buggy());
    assert!(batch_results[2].verdict.is_buggy());
    assert!(batch_results[3].verdict.is_buggy());

    // A later single submission of a batch entry is a cache hit with the
    // same evidence.
    let replay = batch_service
        .submit(JobSpec::new(ModelRef::dlx1_bug(1)))
        .expect("accepted")
        .wait();
    assert!(replay.from_cache);
    assert_eq!(
        replay.verdict.counterexample(),
        batch_results[2].verdict.counterexample()
    );
    batch_service.shutdown();
    single_service.shutdown();
}

#[test]
fn decomposed_mode_verifies_through_the_shared_session() {
    let service = ServeHandle::start(ServiceConfig::default().with_workers(2));
    let mut spec = JobSpec::new(ModelRef::dlx1_correct());
    spec.mode = SolveMode::Decomposed { max_obligations: 8 };
    let result = service.submit(spec).expect("accepted").wait();
    assert!(result.verdict.is_correct(), "{:?}", result.verdict);
    service.shutdown();
}

#[test]
fn keep_proof_stores_a_drat_artifact() {
    let service = ServeHandle::start(ServiceConfig::default().with_workers(2));
    let mut spec = JobSpec::new(ModelRef::dlx1_correct());
    spec.keep_proof = true;
    let ticket = service.submit(spec).expect("accepted");
    let result = ticket.wait();
    assert!(result.verdict.is_correct());
    let entry = service
        .cached(ticket.fingerprint())
        .expect("the verdict is cached");
    let proof = entry.proof_drat.as_ref().expect("proof artifact stored");
    assert!(!proof.is_empty());
    let text = std::str::from_utf8(proof).expect("DRAT text is UTF-8");
    assert!(text.lines().last().unwrap_or("").trim_end().ends_with('0'));
    assert_eq!(service.stats().proofs_kept, 1);
    service.shutdown();
}

#[test]
fn tiny_cache_evicts_under_byte_pressure() {
    let mut config = ServiceConfig::default().with_workers(2);
    // Room for roughly one entry: every new verdict displaces the old one.
    config.cache_bytes = 600;
    config.cache_shards = 1;
    let service = ServeHandle::start(config);
    for i in 0..2 {
        let result = service
            .submit(JobSpec::new(ModelRef::dlx1_bug(i)))
            .expect("accepted")
            .wait();
        assert!(result.verdict.is_buggy());
    }
    let stats = service.stats();
    assert!(
        stats.cache.evictions + stats.cache.oversize >= 1,
        "byte pressure must evict or refuse: {:?}",
        stats.cache
    );
    assert!(stats.cache.bytes <= stats.cache.capacity_bytes);
    service.shutdown();
}

#[test]
fn rejected_batches_leave_no_stuck_fingerprints() {
    let service = ServeHandle::start(ServiceConfig::default().with_workers(1));
    // The second spec is invalid: the whole batch must fail atomically, and
    // the first spec's fingerprint must not be left in the in-flight table
    // (a later submission would otherwise subscribe to a job no worker will
    // ever run).
    let rejected = service.submit_batch(vec![
        JobSpec::new(ModelRef::dlx1_correct()),
        JobSpec::new(ModelRef::dlx1_bug(10_000)),
    ]);
    assert!(matches!(
        rejected,
        Err(velv_serve::ServeError::InvalidJob(_))
    ));
    let retry = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted")
        .wait_for(Duration::from_secs(60))
        .expect("the retried job must actually run");
    assert!(retry.verdict.is_correct());
    service.shutdown();
}

#[test]
fn resubmitting_an_abandoned_job_schedules_a_fresh_one() {
    let service = spin_service(1);
    // Park the worker so the next job stays queued.
    let parked = service
        .submit(JobSpec::new(ModelRef::dlx1_correct()))
        .expect("accepted");
    wait_until("the filler job to start", || {
        parked.status() == JobStatus::Running
    });
    // Abandon a queued job: its cancel token is raised while it is still in
    // the in-flight table.
    let abandoned = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted");
    drop(abandoned);
    // A new client submitting the identical spec must NOT subscribe to the
    // cancelled corpse — it gets a fresh job.
    let fresh = service
        .submit(JobSpec::new(ModelRef::dlx1_bug(0)))
        .expect("accepted");
    assert_eq!(service.stats().dedup_joins, 0);
    drop(parked);
    wait_until("the fresh job to start running", || {
        fresh.status() != JobStatus::Queued
    });
    service.shutdown();
}

#[test]
fn absurd_timeouts_degrade_to_no_deadline_instead_of_panicking() {
    let service = ServeHandle::start(ServiceConfig::default().with_workers(1));
    let result = service
        .submit(
            JobSpec::new(ModelRef::dlx1_correct()).with_timeout(Duration::from_millis(u64::MAX)),
        )
        .expect("admission must not panic on deadline overflow")
        .wait();
    assert!(result.verdict.is_correct());
    service.shutdown();
}

#[test]
fn invalid_jobs_are_rejected_without_scheduling() {
    let service = ServeHandle::start(ServiceConfig::default().with_workers(1));
    assert!(matches!(
        service.submit(JobSpec::new(ModelRef::dlx1_bug(10_000))),
        Err(velv_serve::ServeError::InvalidJob(_))
    ));
    assert_eq!(service.stats().translations, 0);
    service.shutdown();
}
