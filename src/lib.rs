//! `velv` — a from-scratch reproduction of Velev & Bryant's positive-equality
//! EUFM verification flow for superscalar and VLIW microprocessors
//! (DAC 2001 / JSC 2003).
//!
//! This umbrella crate re-exports the individual subsystem crates:
//!
//! * [`velv_eufm`] — the logic of equality with uninterpreted functions and memories,
//! * [`velv_hdl`] — term-level processor modeling and symbolic simulation,
//! * [`velv_models`] — the benchmark processors (DLX pipelines, VLIW, out-of-order),
//! * [`velv_core`] — the EUFM → propositional translation and verification flow,
//! * [`velv_sat`] — the SAT procedures (CDCL presets, DPLL, local search),
//! * [`velv_bdd`] — the BDD package used as the decision-diagram back end,
//! * [`velv_proof`] — DRAT proof formats and the independent RUP checker
//!   behind certified verdicts,
//! * [`velv_obs`] — zero-dependency observability: the metric registry
//!   (Prometheus-text/JSON encodings), the span/event tracer with JSONL
//!   sinks, solver progress heartbeats and the offline trace checker,
//! * [`velv_serve`] — the serving layer: a concurrent verification service
//!   with a fingerprint-keyed verdict cache, in-flight deduplication, batch
//!   scheduling, and the `velvd`/`velvc` TCP wire protocol,
//! * [`velv_store`] — the crash-safe persistent verdict store behind
//!   `velvd --store`: an append-only checksummed record log with recovery
//!   scan, sidecar artifact spill, compaction, and the deterministic
//!   failpoint facility driving the fault-injection suites.
//!
//! # Quickstart
//!
//! ```
//! use velv::prelude::*;
//!
//! let implementation = Dlx::correct(DlxConfig::single_issue());
//! let spec = DlxSpecification::new(DlxConfig::single_issue());
//! let verifier = Verifier::new(TranslationOptions::default());
//! let mut solver = CdclSolver::chaff();
//! assert!(verifier.verify(&implementation, &spec, &mut solver).is_correct());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use velv_bdd;
pub use velv_core;
pub use velv_eufm;
pub use velv_hdl;
pub use velv_models;
pub use velv_obs;
pub use velv_proof;
pub use velv_sat;
pub use velv_serve;
pub use velv_store;

/// The most commonly used items, for `use velv::prelude::*`.
pub mod prelude {
    pub use velv_bdd::BddManager;
    pub use velv_core::{
        Backend, BackendRun, Certificate, CertifiedVerdict, CertifyError, CertifyOptions,
        GEncoding, PortfolioOutcome, RefinementStats, SharedTranslation, TransitivityMode,
        Translation, TranslationOptions, TranslationStats, Verdict, Verifier,
    };
    pub use velv_eufm::Context;
    pub use velv_hdl::{Processor, StateElement, SymbolicState};
    pub use velv_models::dlx::{
        bug_catalog as dlx_bug_catalog, Dlx, DlxBug, DlxConfig, DlxSpecification,
    };
    pub use velv_models::ooo::{Ooo, OooSpecification};
    pub use velv_models::vliw::{
        bug_catalog as vliw_bug_catalog, Vliw, VliwBug, VliwConfig, VliwSpecification,
    };
    pub use velv_sat::cdcl::CdclSolver;
    pub use velv_sat::dpll::DpllSolver;
    pub use velv_sat::incremental::IncrementalSolver;
    pub use velv_sat::local_search::{DlmSolver, WalkSatSolver};
    pub use velv_sat::portfolio::{PortfolioReport, PortfolioSolver};
    pub use velv_sat::presets::SolverKind;
    pub use velv_sat::{Budget, CancelToken, SatResult, Solver};
    pub use velv_serve::{
        JobResult, JobSpec, JobTicket, ModelRef, ServeClient, ServeHandle, ServiceConfig,
        ServiceStats,
    };
}
