//! Build your own processor with the term-level modeling toolkit and verify it.
//!
//! The design is a two-stage accumulator pipeline with a forwarding path; the
//! example verifies the correct version and then a version whose forwarding
//! logic ignores the latch valid bit (a classic "omitted gate input" bug).
//!
//! Run with `cargo run --release --example custom_pipeline`.

use velv::prelude::*;
use velv_eufm::FormulaId;

struct MiniPipe {
    forwarding_checks_valid: bool,
}

impl Processor for MiniPipe {
    fn name(&self) -> &str {
        "mini-pipe"
    }

    fn state_elements(&self) -> Vec<StateElement> {
        vec![
            StateElement::arch_term("pc"),
            StateElement::arch_memory("rf"),
            StateElement::pipe_flag("latch.valid"),
            StateElement::pipe_term("latch.dest"),
            StateElement::pipe_term("latch.data"),
        ]
    }

    fn fetch_width(&self) -> usize {
        1
    }

    fn flush_cycles(&self) -> usize {
        1
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let pc = state.term("pc");
        let rf = state.term("rf");
        let valid = state.formula("latch.valid");
        let dest = state.term("latch.dest");
        let data = state.term("latch.data");

        // Write-back of the latched instruction.
        let written = ctx.write(rf, dest, data);
        let rf_next = ctx.ite_term(valid, written, rf);

        // Fetch and execute a new instruction, forwarding from the latch.
        let op = ctx.uf("imem_op", vec![pc]);
        let src = ctx.uf("imem_src", vec![pc]);
        let new_dest = ctx.uf("imem_dest", vec![pc]);
        let src_matches = ctx.eq(src, dest);
        let forward = if self.forwarding_checks_valid {
            ctx.and(valid, src_matches)
        } else {
            src_matches
        };
        let rf_read = ctx.read(rf, src);
        let operand = ctx.ite_term(forward, data, rf_read);
        let result = ctx.uf("alu", vec![op, operand]);
        let pc_plus = ctx.uf("pc_plus_4", vec![pc]);

        let mut next = SymbolicState::new();
        next.set_term("pc", ctx.ite_term(fetch_enabled, pc_plus, pc));
        next.set_term("rf", rf_next);
        next.set_formula("latch.valid", fetch_enabled);
        next.set_term("latch.dest", ctx.ite_term(fetch_enabled, new_dest, dest));
        next.set_term("latch.data", ctx.ite_term(fetch_enabled, result, data));
        next
    }
}

struct MiniSpec;

impl Processor for MiniSpec {
    fn name(&self) -> &str {
        "mini-spec"
    }

    fn state_elements(&self) -> Vec<StateElement> {
        vec![
            StateElement::arch_term("pc"),
            StateElement::arch_memory("rf"),
        ]
    }

    fn fetch_width(&self) -> usize {
        1
    }

    fn flush_cycles(&self) -> usize {
        0
    }

    fn step(
        &self,
        ctx: &mut Context,
        state: &SymbolicState,
        fetch_enabled: FormulaId,
    ) -> SymbolicState {
        let pc = state.term("pc");
        let rf = state.term("rf");
        let op = ctx.uf("imem_op", vec![pc]);
        let src = ctx.uf("imem_src", vec![pc]);
        let dest = ctx.uf("imem_dest", vec![pc]);
        let operand = ctx.read(rf, src);
        let result = ctx.uf("alu", vec![op, operand]);
        let written = ctx.write(rf, dest, result);
        let pc_plus = ctx.uf("pc_plus_4", vec![pc]);
        let mut next = SymbolicState::new();
        next.set_term("pc", ctx.ite_term(fetch_enabled, pc_plus, pc));
        next.set_term("rf", ctx.ite_term(fetch_enabled, written, rf));
        next
    }
}

fn main() {
    let verifier = Verifier::new(TranslationOptions::default());
    for (label, forwarding_checks_valid) in [("correct", true), ("buggy forwarding", false)] {
        let implementation = MiniPipe {
            forwarding_checks_valid,
        };
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.verify(&implementation, &MiniSpec, &mut solver);
        println!(
            "{label:<18} -> {}",
            match &verdict {
                Verdict::Correct => "verified correct".to_owned(),
                Verdict::Buggy(cex) => format!(
                    "bug found ({} primary variables in the counterexample)",
                    cex.len()
                ),
                Verdict::Unknown(reason) => format!("unknown: {reason}"),
            }
        );
    }
}
