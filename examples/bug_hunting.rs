//! Bug hunting on the dual-issue superscalar: run a slice of the buggy-design
//! suite (the SSS-SAT.1.0 analogue) through several SAT procedures and compare
//! how many bugs each one finds within a small time budget — a miniature
//! version of Table 1.
//!
//! Run with `cargo run --release --example bug_hunting`.

use std::time::Duration;
use velv::prelude::*;

fn main() {
    let config = DlxConfig::dual_issue_full();
    let spec = DlxSpecification::new(config);
    let verifier = Verifier::new(TranslationOptions::default());
    let suite: Vec<DlxBug> = dlx_bug_catalog(config).into_iter().take(8).collect();
    let budget = Budget::time_limit(Duration::from_secs(2));

    println!(
        "translating {} buggy versions of {} ...",
        suite.len(),
        config.name()
    );
    let translations: Vec<_> = suite
        .iter()
        .map(|&bug| verifier.translate(&Dlx::buggy(config, bug), &spec))
        .collect();

    for kind in SolverKind::all() {
        let mut found = 0;
        for translation in &translations {
            let mut solver = kind.build();
            if verifier
                .check(translation, solver.as_mut(), budget.clone())
                .is_buggy()
            {
                found += 1;
            }
        }
        println!(
            "{:<45} {:>2}/{} bugs found",
            kind.label(),
            found,
            translations.len()
        );
    }
}
