//! Compare the eij and small-domain encodings of g-equations, and the effect
//! of positive equality, on the out-of-order superscalar design that needs
//! transitivity of equality (the Tables 4/5/9 story in one program).
//!
//! Run with `cargo run --release --example encoding_comparison`.

use std::time::Instant;
use velv::prelude::*;

fn main() {
    let implementation = Ooo::new(3);
    let spec = OooSpecification::new();

    for (name, options) in [
        (
            "eij encoding + positive equality",
            TranslationOptions::default(),
        ),
        (
            "small-domain encoding",
            TranslationOptions::default().with_small_domain(),
        ),
        (
            "eij, positive equality disabled",
            TranslationOptions::default().without_positive_equality(),
        ),
    ] {
        let verifier = Verifier::new(options);
        let start = Instant::now();
        let translation = verifier.translate(&implementation, &spec);
        let mut solver = CdclSolver::chaff();
        let verdict = verifier.check(&translation, &mut solver, Budget::unlimited());
        println!(
            "{name:<38} primary={:>5} (eij={:>4}, idx={:>4}) cnf={:>6} vars / {:>7} clauses  -> {:<8} in {:.3}s",
            translation.stats.primary_bool_vars,
            translation.stats.eij_vars,
            translation.stats.indexing_vars,
            translation.stats.cnf_vars,
            translation.stats.cnf_clauses,
            if verdict.is_correct() { "correct" } else { "buggy?" },
            start.elapsed().as_secs_f64()
        );
    }
}
