//! Racing back ends: verify a DLX pipeline with the parallel portfolio.
//!
//! The portfolio translates the correctness criterion once, then races CDCL
//! presets against the BDD build; the first engine to decide wins and the
//! losers are cancelled cooperatively.  Run with:
//!
//! ```text
//! cargo run --release --example portfolio
//! ```

use velv::prelude::*;

fn main() {
    let config = DlxConfig::single_issue();
    let verifier = Verifier::new(TranslationOptions::default());
    let spec = DlxSpecification::new(config);

    for (label, design) in [
        ("1xDLX-C (correct)", Dlx::correct(config)),
        (
            "1xDLX-C (buggy forwarding)",
            Dlx::buggy(config, dlx_bug_catalog(config)[0]),
        ),
    ] {
        let outcome = verifier.verify_portfolio(
            &design,
            &spec,
            &[Backend::default_portfolio()],
            Budget::unlimited(),
        );
        println!("{label}");
        println!(
            "  verdict: {}   wall time: {:.3}s   winner: {}",
            if outcome.verdict.is_correct() {
                "correct"
            } else if outcome.verdict.is_buggy() {
                "buggy"
            } else {
                "unknown"
            },
            outcome.wall_time.as_secs_f64(),
            outcome.winner.as_deref().unwrap_or("--"),
        );
        for run in &outcome.runs {
            println!(
                "  {:<10} {:>8.3}s  decided: {:<5}  {}",
                run.name,
                run.time.as_secs_f64(),
                run.verdict.is_correct() || run.verdict.is_buggy(),
                if run.winner { "<- winner" } else { "" },
            );
        }
        println!();
    }

    // The same race is available at the CNF level, below the verifier: any
    // `Solver` call site can swap in a `PortfolioSolver`.
    let translation = verifier.translate(&Dlx::correct(config), &spec);
    let mut portfolio = PortfolioSolver::default_presets();
    let result = portfolio.solve(&translation.cnf);
    let report = portfolio.report().expect("a race was run");
    println!(
        "CNF-level race: unsat={} winner={} engines={}",
        result.is_unsat(),
        report.winner.as_deref().unwrap_or("--"),
        report.engines.len(),
    );
}
