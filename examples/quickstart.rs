//! Quickstart: formally verify the single-issue DLX pipeline against its ISA
//! specification, then inject a bug and look at the counterexample.
//!
//! Run with `cargo run --release --example quickstart`.

use velv::prelude::*;

fn main() {
    // 1. The correct 1xDLX-C pipeline verifies: the CNF of the negated
    //    correctness criterion is unsatisfiable.
    let config = DlxConfig::single_issue();
    let implementation = Dlx::correct(config);
    let spec = DlxSpecification::new(config);
    let verifier = Verifier::new(TranslationOptions::default());

    let translation = verifier.translate(&implementation, &spec);
    println!(
        "1xDLX-C correctness formula: {} primary Boolean variables, {} CNF variables, {} clauses",
        translation.stats.primary_bool_vars,
        translation.stats.cnf_vars,
        translation.stats.cnf_clauses
    );
    let mut solver = CdclSolver::chaff();
    let verdict = verifier.check(&translation, &mut solver, Budget::unlimited());
    println!(
        "verdict: {}",
        if verdict.is_correct() {
            "correct"
        } else {
            "NOT correct"
        }
    );

    // 2. Inject a classic bug — the load interlock forgets to check the second
    //    source operand — and the SAT solver produces a counterexample.
    let bug = DlxBug::LoadInterlockIgnoresOperand {
        operand: 1,
        slot: 0,
    };
    let buggy = Dlx::buggy(config, bug);
    let mut solver = CdclSolver::chaff();
    let verdict = verifier.verify(&buggy, &spec, &mut solver);
    match verdict {
        Verdict::Buggy(cex) => {
            println!("\ninjected bug {bug:?} detected; equalities the counterexample relies on:");
            for name in cex.true_assignments().into_iter().take(10) {
                println!("  {name}");
            }
        }
        other => println!("unexpected verdict: {other:?}"),
    }
}
