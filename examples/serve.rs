//! Serving verdicts in-process: start a verification service, sweep a batch
//! of buggy DLX variants through one shared incremental session, then sweep
//! it again to show the fingerprint-keyed verdict cache at work.
//!
//! Run with `cargo run --release --example serve`.

use std::time::Instant;
use velv::prelude::*;
use velv::velv_serve::{ServiceConfig, SolveMode};

fn sweep(service: &ServeHandle, specs: Vec<JobSpec>, label: &str) {
    let start = Instant::now();
    let tickets = service.submit_batch(specs).expect("batch accepted");
    println!("\n== {label} ==");
    println!(
        "{:<14} {:<8} {:>7} {:>12} {:>12}",
        "job", "verdict", "served", "wall", "solve"
    );
    for ticket in &tickets {
        let result = ticket.wait();
        let verdict = match &result.verdict {
            Verdict::Correct => "correct".to_owned(),
            Verdict::Buggy(cex) => format!("buggy/{}", cex.true_assignments().len()),
            Verdict::Unknown(reason) => format!("unknown[{reason}]"),
        };
        println!(
            "{:<14} {:<8} {:>7} {:>12?} {:>12?}",
            format!("{:.12}", ticket.fingerprint().to_hex()),
            verdict,
            if result.from_cache {
                "cache"
            } else if result.deduplicated {
                "dedup"
            } else {
                "solve"
            },
            result.wall,
            result.solve_time,
        );
    }
    println!(
        "{label}: {:?} wall for {} jobs",
        start.elapsed(),
        tickets.len()
    );
}

fn main() {
    let service = ServeHandle::start(ServiceConfig::default().with_workers(4));

    // A catalog slice: the correct single-issue DLX plus its first few buggy
    // variants, monolithic chaff jobs, plus one decomposed job.
    let catalog = || -> Vec<JobSpec> {
        let mut specs = vec![JobSpec::new(ModelRef::dlx1_correct())];
        for bug in 0..5 {
            specs.push(JobSpec::new(ModelRef::dlx1_bug(bug)));
        }
        let mut decomposed = JobSpec::new(ModelRef::dlx1_correct());
        decomposed.mode = SolveMode::Decomposed { max_obligations: 8 };
        specs.push(decomposed);
        specs
    };

    // Cold sweep: every fingerprint is new; the compatible entries share one
    // translation pass and one incremental solver.
    sweep(&service, catalog(), "cold sweep (fresh solves)");

    // Warm sweep: identical fingerprints — every verdict comes from the
    // cache without touching a translator or solver.
    sweep(&service, catalog(), "warm sweep (cache hits)");

    let stats = service.stats();
    println!("\n== service counters ==");
    for (key, value) in stats.fields() {
        println!("{key:<22} {value}");
    }
    println!("cache hit ratio: {:.1}%", 100.0 * stats.cache.hit_ratio());
    service.shutdown();
}
