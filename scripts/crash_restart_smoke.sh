#!/usr/bin/env bash
# Kill -9 durability smoke: start velvd with a verdict store, decide a small
# catalog, kill the daemon hard (no graceful shutdown, no flush), restart it
# on the same directory, and require every verdict to come back from the
# replayed cache with zero re-solves.  Exercises the real binaries and the
# real wire protocol — the in-process equivalent lives in
# crates/serve/tests/robustness.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:7977"
dir="$(mktemp -d)"
pid=""
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$dir"' EXIT

velvd=target/release/velvd
velvc=target/release/velvc
if [[ ! -x $velvd || ! -x $velvc ]]; then
    cargo build --release -p velv_serve --bins
fi

models=(dlx1:correct dlx1:bug:0 dlx1:bug:1 dlx1:bug:2)

wait_for_ping() {
    for _ in $(seq 1 100); do
        if "$velvc" --addr "$addr" ping >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: velvd did not come up on $addr" >&2
    exit 1
}

# First life: every decided verdict is fsynced before the reply hits the wire.
"$velvd" --addr "$addr" --store "$dir/store" --fsync always &
pid=$!
wait_for_ping
for model in "${models[@]}"; do
    "$velvc" --addr "$addr" submit "model=$model"
done

kill -9 "$pid"
wait "$pid" 2>/dev/null || true

# Second life, same store directory: the log replays into the cache on boot.
"$velvd" --addr "$addr" --store "$dir/store" --fsync always &
pid=$!
wait_for_ping

for model in "${models[@]}"; do
    out="$("$velvc" --addr "$addr" submit "model=$model")"
    echo "$out"
    if ! grep -q "cache hit" <<<"$out"; then
        echo "FAIL: $model was not served from the replayed cache" >&2
        exit 1
    fi
done

stats="$("$velvc" --addr "$addr" stats)"
replayed="$(awk '$1 == "velv_serve_warm_boot_replayed_total" {print $2}' <<<"$stats")"
fresh="$(awk '$1 == "velv_serve_fresh_solves_total" {print $2}' <<<"$stats")"
if [[ "$replayed" != "${#models[@]}" ]]; then
    echo "FAIL: expected ${#models[@]} replayed verdicts, got ${replayed:-none}" >&2
    exit 1
fi
if [[ "$fresh" != "0" ]]; then
    echo "FAIL: the warm boot re-solved $fresh jobs" >&2
    exit 1
fi

"$velvc" --addr "$addr" shutdown
wait "$pid" 2>/dev/null || true
pid=""
echo "crash-restart smoke: OK (${#models[@]} verdicts survived kill -9, zero re-solves)"
