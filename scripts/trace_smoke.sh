#!/usr/bin/env bash
# Distributed-tracing smoke: start velvd with a trace sink and a flight-dump
# directory, drive it with a traced velvc submit, and require (1) a merged
# two-process trace where the server's serve.job span is a child of the
# client's root span — zero unclosed, zero orphaned — (2) non-zero job-wall
# percentiles in the stats, and (3) a flight dump on graceful shutdown.
# Exercises the real binaries and the real wire protocol; the in-process
# equivalents live in crates/serve/tests/ and crates/obs/tests/.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:7978"
dir="$(mktemp -d)"
pid=""
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$dir"' EXIT

velvd=target/release/velvd
velvc=target/release/velvc
if [[ ! -x $velvd || ! -x $velvc ]]; then
    cargo build --release -p velv_serve --bins
fi

wait_for_ping() {
    for _ in $(seq 1 100); do
        if "$velvc" --addr "$addr" ping >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: velvd did not come up on $addr" >&2
    exit 1
}

"$velvd" --addr "$addr" --trace "$dir/server.jsonl" --flight-record "$dir/flight" &
pid=$!
wait_for_ping

# A traced submit: the client mints the trace id and the server parents its
# serve.job span under the client's root span.
"$velvc" --addr "$addr" --trace "$dir/client.jsonl" submit model=dlx1:bug:2
"$velvc" --addr "$addr" submit model=dlx1:bug:3
"$velvc" --addr "$addr" submit model=dlx1:correct

# The SLO block and the derived percentiles are live after the workload.
stats="$("$velvc" --addr "$addr" stats)"
for gauge in velv_serve_job_wall_p50_micros velv_serve_job_wall_p95_micros \
             velv_serve_job_wall_p99_micros; do
    value="$(awk -v k="$gauge" '$1 == k {print $2}' <<<"$stats")"
    if [[ -z "$value" || "$value" == "0" ]]; then
        echo "FAIL: $gauge is ${value:-missing} after the smoke workload" >&2
        exit 1
    fi
done

# The live-introspection verbs answer over the wire.
"$velvc" --addr "$addr" top --once
"$velvc" --addr "$addr" flight >/dev/null

"$velvc" --addr "$addr" shutdown
wait "$pid" 2>/dev/null || true
pid=""

# The graceful shutdown left a flight dump.
if ! compgen -G "$dir/flight/FLIGHT-*.jsonl" >/dev/null; then
    echo "FAIL: no flight dump in $dir/flight after graceful shutdown" >&2
    exit 1
fi

# The two captures merge into one clean distributed trace: velvc trace exits
# non-zero on unclosed or orphaned spans.
merged="$("$velvc" trace "$dir/server.jsonl" "$dir/client.jsonl")"
echo "$merged"
links="$(awk '$1 == "remote" && $2 == "links" {print $3}' <<<"$merged")"
if [[ -z "$links" || "$links" == "0" ]]; then
    echo "FAIL: the merged trace resolved no cross-process links" >&2
    exit 1
fi

echo "trace smoke: OK (merged two-process trace clean, $links remote link(s), percentiles live, flight dump present)"
