#!/usr/bin/env bash
# Memory-pressure smoke: populate a velvd store, restart the daemon under a
# tiny --mem-limit, and require the staged degradation to hold over the real
# wire — warm repeats still answered from the replayed cache, fresh work
# refused busy, the `mem` verb reporting a pinned pressure level, and live
# bytes staying flat across repeated stats polls (no leak while shedding).
# The in-process equivalent lives in crates/serve/tests/mem_pressure.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:7978"
dir="$(mktemp -d)"
pid=""
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$dir"' EXIT

velvd=target/release/velvd
velvc=target/release/velvc
if [[ ! -x $velvd || ! -x $velvc ]]; then
    cargo build --release -p velv_serve --bins
fi

models=(dlx1:correct dlx1:bug:0 dlx1:bug:1)

wait_for_ping() {
    for _ in $(seq 1 100); do
        if "$velvc" --addr "$addr" ping >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: velvd did not come up on $addr" >&2
    exit 1
}

# First life: decide the catalog with a store attached, no memory limit.
"$velvd" --addr "$addr" --store "$dir/store" --fsync always &
pid=$!
wait_for_ping
for model in "${models[@]}"; do
    "$velvc" --addr "$addr" submit "model=$model"
done
"$velvc" --addr "$addr" shutdown
wait "$pid" 2>/dev/null || true

# Second life, same store, 1-byte limit: the heap is always past 95% of it,
# so the daemon boots straight into stage 3.
"$velvd" --addr "$addr" --store "$dir/store" --fsync always --mem-limit 1 &
pid=$!
wait_for_ping

# Warm repeats must keep being served from the replayed cache at stage 3.
for model in "${models[@]}"; do
    out="$("$velvc" --addr "$addr" submit "model=$model")"
    echo "$out"
    if ! grep -q "cache hit" <<<"$out"; then
        echo "FAIL: $model was not served from the replayed cache under pressure" >&2
        exit 1
    fi
done

# Fresh work (a fingerprint the store never saw) must be refused busy
# (velvc exit code 3).
if "$velvc" --addr "$addr" submit "model=dlx1:bug:2" >/dev/null 2>&1; then
    echo "FAIL: fresh work was accepted at stage 3" >&2
    exit 1
elif [[ $? -ne 3 ]]; then
    echo "FAIL: fresh work failed with the wrong exit code (want 3 = busy)" >&2
    exit 1
fi

# The mem verb reports the episode: pressure pinned at 3, the configured
# limit echoed back, non-zero live bytes and per-scope rows present.
mem="$("$velvc" --addr "$addr" mem)"
echo "$mem"
level="$(awk '$1 == "pressure-level" {print $2}' <<<"$mem")"
limit="$(awk '$1 == "mem-limit-bytes" {print $2}' <<<"$mem")"
live="$(awk '$1 == "live-bytes" {print $2}' <<<"$mem")"
if [[ "$level" != "3" ]]; then
    echo "FAIL: expected pressure level 3, got ${level:-none}" >&2
    exit 1
fi
if [[ "$limit" != "1" ]]; then
    echo "FAIL: expected mem-limit-bytes 1, got ${limit:-none}" >&2
    exit 1
fi
if [[ -z "$live" || "$live" -le 0 ]]; then
    echo "FAIL: live-bytes should be positive, got ${live:-none}" >&2
    exit 1
fi
if ! grep -q "^serve.cache" <<<"$mem"; then
    echo "FAIL: the mem dump has no serve.cache scope row" >&2
    exit 1
fi

# Live bytes stay flat while the daemon sheds: three polls separated by warm
# sweeps may wobble (allocator churn) but must not climb more than 10%.
first_live="$live"
for _ in 1 2; do
    for model in "${models[@]}"; do
        "$velvc" --addr "$addr" submit "model=$model" >/dev/null
    done
    live="$("$velvc" --addr "$addr" mem | awk '$1 == "live-bytes" {print $2}')"
done
ceiling=$((first_live + first_live / 10))
if [[ "$live" -gt "$ceiling" ]]; then
    echo "FAIL: live bytes climbed under pressure: $first_live -> $live (ceiling $ceiling)" >&2
    exit 1
fi

"$velvc" --addr "$addr" shutdown
wait "$pid" 2>/dev/null || true
pid=""
echo "mem smoke: OK (cache hits served, fresh work refused, live $first_live -> $live bytes)"
